"""The serving-fleet engine: the per-interval control loop.

Ties every piece together on one simulated clock:

1. admit backends whose cold spawn finished;
2. fire the chaos overlay's :class:`~repro.faults.plan.FaultEngine`
   (backend deaths via ``ipvs.kill_server`` on a seeded victim, packet
   loss pushed down to the shards while the window is open);
3. run every arrival shard for the interval (serially or across worker
   processes — same bytes either way);
4. merge shard results in shard order, re-schedule churned and orphaned
   connections through the live IPVS director, and publish the
   interval's signals into the ``repro.obs`` registry;
5. let the autoscaler act on those signals;
6. track SLO recovery after the chaos window closes.

Everything the run produces is collected into a :class:`ServeResult`;
rendering (and the byte-identity contract) lives in
:mod:`repro.serve.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults import sites
from repro.faults.plan import FaultEngine, FaultPlan
from repro.guest.ipvs import IpvsMode, IpvsStats
from repro.lb.cluster import LoadBalancedCluster
from repro.obs import Telemetry
from repro.obs.registry import Histogram
from repro.perf.clock import SimClock
from repro.perf.rand import DeterministicRng
from repro.platforms.x_container import XContainerPlatform
from repro.serve.autoscaler import AutoscaleDecision, Autoscaler
from repro.serve.fleet import BackendFleet
from repro.serve.scenario import ServeScenario
from repro.serve.sharding import make_runner
from repro.serve.traffic import (
    SERVE_LATENCY_BUCKETS_NS,
    ShardConfig,
    ShardSnapshot,
    ShardState,
    initial_shard_state,
    mix_tables,
)


@dataclass
class IntervalRow:
    """One control interval, as it appears in the report table."""

    index: int
    t0_ms: float
    arrivals: int
    errors: int
    retransmits: int
    p50_ms: float
    p99_ms: float
    utilization: float
    alive: int
    provisioned: int
    queue_depth: float


@dataclass
class ServeEvent:
    t_ms: float
    text: str


@dataclass
class ServeResult:
    """Everything one run produced (pre-rendering)."""

    scenario: ServeScenario
    seed: int | str
    offered_rps: float
    intervals: list[IntervalRow]
    events: list[ServeEvent]
    decisions: list[AutoscaleDecision]
    requests: int
    completed: int
    errors: int
    retransmits: int
    churned: int
    reconnects: int
    p50_ms: float
    p99_ms: float
    p999_ms: float
    mean_ms: float
    simulated_rps: float
    ipvs_stats: IpvsStats
    conservation_ok: bool
    backends_final: int
    #: None without a chaos overlay.
    chaos_window_end_ms: float | None
    recovered_at_ms: float | None
    recovery_ms: float | None
    slo_ok: bool
    fault_counters: dict[str, dict[str, int]]
    #: Engine-invariant rollup of the real stepped backend domains
    #: (:class:`repro.serve.domains.ServeDomainFleet`).
    fleet_exec: dict | None = None
    telemetry: Telemetry | None = field(
        repr=False, compare=False, default=None
    )


class ServeEngine:
    """One scenario + one seed -> one deterministic :class:`ServeResult`."""

    def __init__(
        self,
        scenario: ServeScenario,
        seed: int | str = 0,
        workers: int | None = None,
        engine: str = "hybrid",
    ) -> None:
        if engine not in ("stepped", "hybrid"):
            raise ValueError(
                f"engine must be 'stepped' or 'hybrid': {engine!r}"
            )
        self.scenario = scenario
        self.seed = seed
        self.workers = workers
        #: Execution engine for the real backend domains; ``hybrid``
        #: fast-forwards parked domains, ``stepped`` is the oracle.
        #: Results are byte-identical either way (CI compares them).
        self.engine = engine

    def run(self) -> ServeResult:
        sc = self.scenario
        clock = SimClock()
        telemetry = Telemetry(clock=clock, scenario=sc.name)
        registry = telemetry.registry

        cluster = LoadBalancedCluster(
            n_backends=sc.backends, backend_profile=sc.backend_profile
        )
        platform = XContainerPlatform(cluster.costs)
        direct = sc.mode is IpvsMode.DIRECT_ROUTING
        backend_service_ns = cluster.backend_service_ns(platform, direct)
        director_service_ns = cluster.director_service_ns(platform, sc.mode)
        # Offered load is a target utilization of the INITIAL fleet;
        # the mix's mean work factor converts capacity to a rate.
        offered_rps = (
            sc.offered_load
            * sc.backends
            * 1e9
            / (backend_service_ns * sc.mean_work)
        )

        fleet = BackendFleet(cluster, platform, sc.mode, sc.scheduler)
        self._bind_ipvs(registry, fleet)

        # Every live backend is a real stepped domain on its own engine
        # clock; the exec fleet lives in the parent process so worker
        # sharding never touches it.
        from repro.serve.domains import ServeDomainFleet

        exec_fleet = ServeDomainFleet(
            backend_service_ns,
            sc.interval_ms * 1e6,
            hybrid=self.engine == "hybrid",
        )
        for backend_id in fleet.alive_ids():
            exec_fleet.ensure(backend_id)

        mix_cum, mix_work = mix_tables(
            tuple((c.weight, c.work) for c in sc.mix)
        )
        cfg = ShardConfig(
            seed=f"{self.seed}:{sc.name}",
            shards=sc.shards,
            rate_rps=offered_rps / sc.shards,
            tail_alpha=sc.tail_alpha,
            churn_p=1.0 / sc.keepalive_requests,
            mix_cum_weights=mix_cum,
            mix_work=mix_work,
            backend_service_ns=backend_service_ns,
            director_service_ns=director_service_ns,
            conn_setup_ns=sc.conn_setup_us * 1e3,
            retry_penalty_ns=(
                sc.chaos.retry_penalty_ms * 1e6 if sc.chaos else 0.0
            ),
        )
        runner = make_runner(cfg, sc.shards, self.workers)

        # The director schedules every keep-alive connection up front,
        # slot-major per shard — the wlc state is live from t=0.
        states: list[ShardState] = [
            initial_shard_state(
                [fleet.open_conn() for _ in range(sc.conns_per_shard)]
            )
            for _ in range(sc.shards)
        ]

        chaos_engine: FaultEngine | None = None
        chaos_rng = DeterministicRng(f"{self.seed}:{sc.name}:victims")
        if sc.chaos is not None:
            plan: FaultPlan = sc.chaos.build_plan(
                f"{self.seed}:{sc.name}:chaos"
            )
            chaos_engine = plan.compile(clock=clock)

        total_latency = registry.histogram(
            "serve_request_latency_ns",
            help="End-to-end request latency (director + backend)",
            buckets=SERVE_LATENCY_BUCKETS_NS,
        )
        requests_total = registry.counter("serve_requests_total")
        errors_total = registry.counter("serve_errors_total")
        retransmits_total = registry.counter("serve_retransmits_total")
        churn_total = registry.counter("serve_conn_churn_total")
        reconnect_total = registry.counter("serve_reconnects_total")
        up_total = registry.counter("serve_autoscale_up_total")
        down_total = registry.counter("serve_autoscale_down_total")
        p99_gauge = registry.gauge("serve_interval_p99_ms")
        util_gauge = registry.gauge("serve_fleet_utilization")
        alive_gauge = registry.gauge("serve_backends_alive")
        prov_gauge = registry.gauge("serve_backends_provisioned")
        queue_gauge = registry.gauge("serve_queue_depth")

        autoscaler = Autoscaler(sc.autoscaler, registry)
        interval_ns = sc.interval_ms * 1e6
        rows: list[IntervalRow] = []
        events: list[ServeEvent] = []
        window_end_ms = sc.chaos.end_ms if sc.chaos else None
        recovered_at_ms: float | None = None
        kills_fired = 0
        reconnects = churned_total_n = 0

        try:
            for index in range(sc.n_intervals):
                t0 = index * interval_ns
                t1 = t0 + interval_ns
                clock.advance_to(t0)

                ready = fleet.activate_ready(t0)
                for backend_id in ready:
                    exec_fleet.ensure(backend_id)
                    events.append(ServeEvent(
                        t0 / 1e6, f"backend {backend_id} warmed up"
                    ))

                loss_p = 0.0
                if chaos_engine is not None:
                    kill = chaos_engine.fire(sites.NET_BACKEND)
                    if kill is not None and fleet.n_alive() > 1:
                        victim = chaos_rng.choice(fleet.alive_ids())
                        failed = fleet.kill(victim)
                        exec_fleet.retire(victim)
                        kills_fired += 1
                        events.append(ServeEvent(
                            t0 / 1e6,
                            f"chaos: backend {victim} died "
                            f"({failed} connections lost)",
                        ))
                    drop = chaos_engine.fire(sites.NET_PACKET)
                    if drop is not None:
                        loss_p = drop.param

                shares = self._capacity_shares(states)
                outcomes = runner.run([
                    (
                        s,
                        states[s],
                        ShardSnapshot(
                            interval_idx=index,
                            t0_ns=t0,
                            t1_ns=t1,
                            dead=fleet.dead_ids,
                            loss_p=loss_p,
                            share_by_backend=shares[s],
                        ),
                    )
                    for s in range(sc.shards)
                ])

                # Merge in shard order: counters, histograms, then the
                # director-mediated connection churn slot by slot.
                interval_hist = Histogram(
                    "interval", (), buckets=cfg.buckets
                )
                arrivals = errors = retransmits = 0
                busy_ns = 0.0
                queue_ns = 0.0
                busy_by_backend: dict[int, float] = {}
                for shard_idx, (result, new_state) in enumerate(outcomes):
                    states[shard_idx] = new_state
                    arrivals += result.arrivals
                    errors += result.errors
                    retransmits += result.retransmits
                    for b in sorted(result.busy_ns_by_backend):
                        ns = result.busy_ns_by_backend[b]
                        busy_ns += ns
                        busy_by_backend[b] = busy_by_backend.get(b, 0.0) + ns
                    queue_ns += result.queue_ns_end
                    interval_hist.merge_counts(
                        result.lat_bucket_counts,
                        result.lat_sum,
                        result.lat_count,
                    )
                    total_latency.merge_counts(
                        result.lat_bucket_counts,
                        result.lat_sum,
                        result.lat_count,
                    )
                    churned = set(result.churned_slots)
                    conns = new_state.conns
                    for slot in range(len(conns)):
                        if conns[slot] in fleet.dead_ids:
                            # The old connection died with its backend;
                            # the director schedules a fresh one.
                            conns[slot] = fleet.open_conn()
                            new_state.fresh[slot] = True
                            reconnects += 1
                        elif slot in churned:
                            fleet.close_conn(conns[slot])
                            conns[slot] = fleet.open_conn()
                            new_state.fresh[slot] = True
                            churned_total_n += 1

                if chaos_engine is not None and retransmits:
                    for _ in range(retransmits):
                        chaos_engine.record_retry(sites.NET_PACKET)

                # Feed the interval's busy time to the real backend
                # domains and step/fast-forward them to the interval end.
                for backend_id in sorted(busy_by_backend):
                    exec_fleet.post_busy(
                        backend_id, busy_by_backend[backend_id], t0
                    )
                exec_fleet.run_until(t1)

                n_alive = fleet.n_alive()
                utilization = (
                    busy_ns / (n_alive * interval_ns) if n_alive else 0.0
                )
                p50_ms = interval_hist.quantile(0.50) / 1e6
                p99_ms = interval_hist.quantile(0.99) / 1e6
                queue_depth = queue_ns / backend_service_ns

                requests_total.inc(arrivals)
                errors_total.inc(errors)
                retransmits_total.inc(retransmits)
                p99_gauge.set(p99_ms)
                util_gauge.set(utilization)
                alive_gauge.set(n_alive)
                prov_gauge.set(fleet.n_provisioned())
                queue_gauge.set(queue_depth)

                decision = autoscaler.decide(t1 / 1e6)
                if decision is not None:
                    if decision.direction == "up":
                        up_total.inc(decision.amount)
                        for _ in range(decision.amount):
                            fleet.spawn(
                                t1 + sc.autoscaler.spawn_delay_ms * 1e6
                            )
                    else:
                        down_total.inc(decision.amount)
                        for victim in self._downscale_victims(
                            fleet, decision.amount
                        ):
                            fleet.drain(victim)
                    events.append(ServeEvent(
                        decision.t_ms,
                        f"autoscale {decision.direction} "
                        f"x{decision.amount} -> "
                        f"{decision.backends_after} ({decision.reason})",
                    ))

                rows.append(IntervalRow(
                    index=index,
                    t0_ms=t0 / 1e6,
                    arrivals=arrivals,
                    errors=errors,
                    retransmits=retransmits,
                    p50_ms=p50_ms,
                    p99_ms=p99_ms,
                    utilization=utilization,
                    alive=n_alive,
                    provisioned=fleet.n_provisioned(),
                    queue_depth=queue_depth,
                ))

                if (
                    window_end_ms is not None
                    and recovered_at_ms is None
                    and t1 / 1e6 >= window_end_ms
                    and p99_ms <= sc.slo.p99_ms
                ):
                    recovered_at_ms = t1 / 1e6
                    events.append(ServeEvent(
                        recovered_at_ms,
                        f"SLO recovered (p99 {p99_ms:.3f}ms <= "
                        f"{sc.slo.p99_ms:g}ms)",
                    ))

                clock.advance_to(t1)
        finally:
            runner.close()

        recovery_ms: float | None = None
        if window_end_ms is not None:
            if recovered_at_ms is not None:
                recovery_ms = recovered_at_ms - window_end_ms
                slo_ok = recovery_ms <= sc.slo.recovery_window_ms
            else:
                slo_ok = False
            if chaos_engine is not None:
                for _ in range(kills_fired):
                    if slo_ok:
                        chaos_engine.record_recovered(sites.NET_BACKEND)
                    else:
                        chaos_engine.record_fatal(sites.NET_BACKEND)
        else:
            slo_ok = total_latency.quantile(0.99) / 1e6 <= sc.slo.p99_ms

        fault_counters: dict[str, dict[str, int]] = {}
        if chaos_engine is not None:
            for site, counters in sorted(chaos_engine.counters.items()):
                fault_counters[site] = {
                    "occurrences": counters.occurrences,
                    "injected": counters.injected,
                    "retried": counters.retried,
                    "recovered": counters.recovered,
                    "fatal": counters.fatal,
                }

        completed = sum(row.arrivals - row.errors for row in rows)
        requests = sum(row.arrivals for row in rows)
        duration_s = sc.duration_ms / 1e3
        return ServeResult(
            scenario=sc,
            seed=self.seed,
            offered_rps=offered_rps,
            intervals=rows,
            events=events,
            decisions=list(autoscaler.decisions),
            requests=requests,
            completed=completed,
            errors=sum(row.errors for row in rows),
            retransmits=sum(row.retransmits for row in rows),
            churned=churned_total_n,
            reconnects=reconnects,
            p50_ms=total_latency.quantile(0.50) / 1e6,
            p99_ms=total_latency.quantile(0.99) / 1e6,
            p999_ms=total_latency.quantile(0.999) / 1e6,
            mean_ms=total_latency.mean / 1e6,
            simulated_rps=completed / duration_s,
            ipvs_stats=fleet.ipvs.stats,
            conservation_ok=fleet.ipvs.conservation_ok(),
            backends_final=fleet.n_alive(),
            chaos_window_end_ms=window_end_ms,
            recovered_at_ms=recovered_at_ms,
            recovery_ms=recovery_ms,
            slo_ok=slo_ok,
            fault_counters=fault_counters,
            fleet_exec=exec_fleet.summary(),
            telemetry=telemetry,
        )

    @staticmethod
    def _capacity_shares(
        states: list[ShardState],
    ) -> list[tuple[tuple[int, float], ...]]:
        """Per-shard backend capacity divisors from the conn table.

        A shard holding ``k`` of a backend's ``n`` connections sends it
        ``k/n`` of its traffic, so its local queueing view must divide
        the backend's capacity by ``n/k`` (see ``traffic.py``).
        """
        totals: dict[int, int] = {}
        per_shard: list[dict[int, int]] = []
        for state in states:
            mine: dict[int, int] = {}
            for backend in state.conns:
                mine[backend] = mine.get(backend, 0) + 1
                totals[backend] = totals.get(backend, 0) + 1
            per_shard.append(mine)
        return [
            tuple(
                (backend, totals[backend] / count)
                for backend, count in sorted(mine.items())
            )
            for mine in per_shard
        ]

    @staticmethod
    def _downscale_victims(fleet: BackendFleet, amount: int) -> list[int]:
        """Drain the newest, least-loaded backends first."""
        ranked = sorted(
            fleet.alive_ids(),
            key=lambda b: (fleet.active_conns(b), -b),
        )
        return ranked[:amount]

    @staticmethod
    def _bind_ipvs(registry, fleet: BackendFleet) -> None:
        stats = fleet.ipvs.stats
        for name, fn in (
            ("serve_ipvs_scheduled_total", lambda: stats.scheduled),
            ("serve_ipvs_conns_opened_total", lambda: stats.conns_opened),
            ("serve_ipvs_conns_closed_total", lambda: stats.conns_closed),
            ("serve_ipvs_conns_failed_total", lambda: stats.conns_failed),
            ("serve_ipvs_servers_added_total", lambda: stats.servers_added),
            ("serve_ipvs_servers_removed_total",
             lambda: stats.servers_removed),
            ("serve_ipvs_backend_deaths_total",
             lambda: stats.backend_deaths),
        ):
            registry.bind(name, fn, kind="counter")
