"""Real stepped domains behind the serving fleet.

Before the hybrid execution core, ``repro.serve`` backends were pure
cost-model queues: the shards computed busy nanoseconds per backend and
nothing ever *executed*.  This module gives every live backend a real
:class:`~repro.core.engine.ExecDomain` — an X-Container running the
guest idle-loop worker through the interpreter — and converts each
interval's busy time into mailbox work units.  Quiescent backends park
in ``hlt`` and fast-forward between intervals, so a 100-backend fleet
costs wall-clock proportional to the work actually served, not to
``backends × intervals``.

Unit quantization bounds the interpreter cost: one work unit represents
``max(backend_service_ns, interval_ns / 32)`` of busy time, so a backend
never runs more than ~32 guest bursts per interval no matter how hot it
is.  Everything in :meth:`ServeDomainFleet.summary` is engine-invariant
(identical under ``--engine hybrid`` and ``--engine stepped``), which is
what lets the serve report include it without breaking the CI
byte-identity comparison between the two engines.
"""

from __future__ import annotations

import math

from repro.core.engine import ExecutionEngine

#: Hard ceiling on work units per (backend, interval) — a queue-saturated
#: backend can report busy_ns > interval_ns; the guest burst stays bounded.
MAX_UNITS_PER_INTERVAL = 64


def _tick_for(interval_ns: float) -> float:
    """Largest tick <= 1 ms that divides the control interval exactly."""
    interval = int(interval_ns)
    if interval <= 0 or interval != interval_ns:
        return 1.0  # degenerate interval: fall back to a 1 ns grid
    return float(math.gcd(interval, 1_000_000))


class ServeDomainFleet:
    """One :class:`ExecutionEngine` fleet mirroring the serve backends."""

    def __init__(
        self,
        backend_service_ns: float,
        interval_ns: float,
        hybrid: bool = True,
    ) -> None:
        self.unit_ns = max(backend_service_ns, interval_ns / 32.0)
        self.engine = ExecutionEngine(
            hybrid=hybrid, tick_ns=_tick_for(interval_ns)
        )
        #: serve backend id -> engine domid (serve ids are reused only
        #: after death; engine domids never are).
        self._domid_by_backend: dict[int, int] = {}

    def ensure(self, backend_id: int) -> None:
        """Give a newly live backend its own parked domain."""
        if backend_id not in self._domid_by_backend:
            dom = self.engine.spawn(f"backend{backend_id}")
            self._domid_by_backend[backend_id] = dom.domid

    def retire(self, backend_id: int) -> None:
        """A chaos kill took the backend down: its domain dies with it."""
        domid = self._domid_by_backend.pop(backend_id, None)
        if domid is not None:
            self.engine.retire(domid)

    def post_busy(
        self, backend_id: int, busy_ns: float, t0_ns: float
    ) -> int:
        """Convert an interval's busy time into mailbox work units."""
        domid = self._domid_by_backend.get(backend_id)
        if domid is None:
            return 0
        units = min(int(busy_ns // self.unit_ns), MAX_UNITS_PER_INTERVAL)
        if units > 0:
            self.engine.post_work(domid, units, at_ns=t0_ns)
        return units

    def run_until(self, t_ns: float) -> None:
        self.engine.run_until(t_ns)

    def summary(self) -> dict:
        """Engine-invariant rollup for the serve report.

        Drains the queue first so late-posted work completes.  Every
        value is identical between hybrid and stepped runs (the
        ``polls`` counter, which is not, stays out).
        """
        self.engine.run_to_quiescence()
        stats = self.engine.stats
        return {
            "domains_spawned": self.engine.n_domains,
            "domains_live": len(self._domid_by_backend),
            "units_posted": stats.units_posted,
            "units_completed": self.engine.total_completed(),
            "wake_events": stats.wake_events,
            "spurious_wakes": stats.spurious_wakes,
            "guest_instructions": stats.instructions,
            "fastforward_ms": round(stats.fastforward_ns / 1e6, 3),
        }
