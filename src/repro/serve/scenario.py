"""Serving-fleet scenario definitions.

A :class:`ServeScenario` is a fully declarative description of one
fleet-scale serving run: the IPVS mode and scheduler, the initial
backend count, the offered load (as a target utilization of the initial
fleet), the request mix, connection-churn behaviour, the autoscaler and
SLO policies, and an optional chaos overlay.  Everything the engine
does is derived from the scenario plus one seed, so the same pair
always produces a byte-identical report (the ``repro chaos`` contract).

The per-component service costs come from the Fig 9 cluster model
(:class:`repro.lb.cluster.LoadBalancedCluster`): a serve scenario is the
same director + N-backend fleet, just with hundreds of backends, its
own (heavier) request profile, and time in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.faults import sites
from repro.faults.plan import FaultPlan, FaultSpec, TimeWindow
from repro.guest.ipvs import IpvsMode
from repro.workloads.base import RequestProfile
from repro.workloads.profiles import NGINX

#: The fleet backend profile: a dynamic app behind NGINX (think uwsgi),
#: ~1 ms of application work per request, so one backend sustains on the
#: order of 10^3 req/s and a hundred-backend fleet serves ~10^5 req/s.
FLEET_PROFILE = replace(
    NGINX, bytes_in=600, bytes_out=8000, app_work_ns=1_000_000, processes=1
)


@dataclass(frozen=True)
class RequestClass:
    """One entry of the request-size mix.

    ``work`` scales the backend's per-request service time (payload
    size and compute both ride the same knob); ``weight`` is the
    relative arrival probability.
    """

    name: str
    weight: float
    work: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"mix weight must be positive: {self.weight}")
        if self.work <= 0:
            raise ValueError(f"work factor must be positive: {self.work}")


#: Default heavy-tailed size mix: mostly small cached-ish responses, a
#: thin stream of expensive requests (mean work factor 0.87).
DEFAULT_MIX: tuple[RequestClass, ...] = (
    RequestClass("small", 0.70, 0.6),
    RequestClass("medium", 0.25, 1.0),
    RequestClass("large", 0.05, 4.0),
)


@dataclass(frozen=True)
class SloPolicy:
    """The latency objective and the chaos-recovery budget."""

    #: Interval p99 latency objective, in milliseconds.
    p99_ms: float
    #: After the first backend death, p99 must return under the
    #: objective within this many milliseconds.
    recovery_window_ms: float

    def __post_init__(self) -> None:
        if self.p99_ms <= 0 or self.recovery_window_ms <= 0:
            raise ValueError("SLO targets must be positive")


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Hysteresis band + cooldowns for the backend-count control loop."""

    min_backends: int
    max_backends: int
    #: Scale up when interval p99 exceeds this (ms).
    up_p99_ms: float
    #: Scale down only when p99 is below this (ms) AND utilization is
    #: below ``down_utilization`` — the hysteresis band.
    down_p99_ms: float
    down_utilization: float
    up_step: int = 4
    down_step: int = 2
    cooldown_up_ms: float = 200.0
    cooldown_down_ms: float = 400.0
    #: Cold-spawn delay: a new backend serves only after this long.
    spawn_delay_ms: float = 150.0

    def __post_init__(self) -> None:
        if not 1 <= self.min_backends <= self.max_backends:
            raise ValueError(
                f"need 1 <= min <= max backends: "
                f"{self.min_backends}..{self.max_backends}"
            )
        if self.down_p99_ms >= self.up_p99_ms:
            raise ValueError(
                "hysteresis band is empty: down_p99_ms must be below "
                f"up_p99_ms ({self.down_p99_ms} >= {self.up_p99_ms})"
            )
        if self.up_step < 1 or self.down_step < 1:
            raise ValueError("scale steps must be >= 1")


@dataclass(frozen=True)
class ChaosOverlay:
    """A ``repro.faults`` plan replayed against the running fleet.

    Compiles to two specs on the existing site catalog: backend deaths
    (:data:`repro.faults.sites.NET_BACKEND`, kind ``kill``, at most one
    per control interval inside the window) and packet loss
    (:data:`repro.faults.sites.NET_PACKET`, kind ``drop``, applied to
    each request with probability ``packet_loss_p`` while the window is
    open).  Victims are chosen from a :class:`DeterministicRng` fork of
    the run seed, so the whole overlay replays byte-identically.
    """

    start_ms: float
    duration_ms: float
    backend_kills: int = 0
    packet_loss_p: float = 0.0
    #: Latency cost of one retransmitted (dropped) request, ms.
    retry_penalty_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.start_ms < 0 or self.duration_ms <= 0:
            raise ValueError("chaos window must be positive and in-run")
        if self.backend_kills < 0:
            raise ValueError(f"kills must be >= 0: {self.backend_kills}")
        if not 0.0 <= self.packet_loss_p < 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1): {self.packet_loss_p}"
            )
        if self.backend_kills == 0 and self.packet_loss_p == 0.0:
            raise ValueError("chaos overlay injects nothing")

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms

    def build_plan(self, seed: int | str) -> FaultPlan:
        """The overlay as a first-class, replayable ``FaultPlan``."""
        start_ns = self.start_ms * 1e6
        end_ns = self.end_ms * 1e6
        specs: list[FaultSpec] = []
        if self.backend_kills:
            specs.append(
                FaultSpec(
                    sites.NET_BACKEND,
                    "kill",
                    TimeWindow(start_ns, end_ns),
                    limit=self.backend_kills,
                )
            )
        if self.packet_loss_p:
            specs.append(
                FaultSpec(
                    sites.NET_PACKET,
                    "drop",
                    TimeWindow(start_ns, end_ns),
                    param=self.packet_loss_p,
                )
            )
        return FaultPlan(tuple(specs), seed=seed)


@dataclass(frozen=True)
class ServeScenario:
    """One serving-fleet run, fully determined together with a seed."""

    name: str
    description: str
    mode: IpvsMode
    backends: int
    duration_ms: float
    interval_ms: float
    #: Offered load as a fraction of the *initial* fleet's capacity
    #: (the engine converts to requests/sec using the cost model and
    #: the mix's mean work factor).
    offered_load: float
    autoscaler: AutoscalerPolicy
    slo: SloPolicy
    scheduler: str = "wlc"
    chaos: ChaosOverlay | None = None
    #: Pareto shape of the inter-arrival heavy-tail modulation
    #: (smaller = burstier; must be > 1 so the mean exists).
    tail_alpha: float = 1.6
    mix: tuple[RequestClass, ...] = DEFAULT_MIX
    #: Mean requests per keep-alive connection before churn.
    keepalive_requests: int = 24
    #: Client connections per arrival shard.
    conns_per_shard: int = 32
    #: Independent arrival streams (fixed by the scenario, NOT by the
    #: host: worker processes split these, so worker count never
    #: changes results).
    shards: int = 4
    backend_profile: RequestProfile = FLEET_PROFILE
    #: TCP + IPVS connection establishment cost, charged to the first
    #: request of each fresh connection (µs).
    conn_setup_us: float = 80.0

    def __post_init__(self) -> None:
        if self.backends < 1:
            raise ValueError(f"need >= 1 backend: {self.backends}")
        if self.duration_ms <= 0 or self.interval_ms <= 0:
            raise ValueError("duration and interval must be positive")
        if self.duration_ms < self.interval_ms:
            raise ValueError("duration shorter than one control interval")
        if not 0 < self.offered_load:
            raise ValueError(f"offered load must be positive: "
                             f"{self.offered_load}")
        if self.tail_alpha <= 1.0:
            raise ValueError(
                f"tail alpha must be > 1 for a finite mean: "
                f"{self.tail_alpha}"
            )
        if self.keepalive_requests < 1:
            raise ValueError("keep-alive budget must be >= 1")
        if self.conns_per_shard < 1 or self.shards < 1:
            raise ValueError("need >= 1 connection and >= 1 shard")
        if not self.mix:
            raise ValueError("request mix is empty")
        if self.chaos is not None:
            if self.chaos.end_ms > self.duration_ms:
                raise ValueError("chaos window extends past the run")
            n_intervals = int(self.chaos.duration_ms // self.interval_ms)
            if self.chaos.backend_kills > n_intervals:
                raise ValueError(
                    "at most one backend death per control interval: "
                    f"{self.chaos.backend_kills} kills in "
                    f"{n_intervals} intervals"
                )
        if not (self.autoscaler.min_backends
                <= self.backends
                <= self.autoscaler.max_backends):
            raise ValueError(
                "initial backends outside the autoscaler's range"
            )

    @property
    def n_intervals(self) -> int:
        return int(round(self.duration_ms / self.interval_ms))

    @property
    def mean_work(self) -> float:
        total = sum(c.weight for c in self.mix)
        return sum(c.weight * c.work for c in self.mix) / total


# ---------------------------------------------------------------------------
# Catalog
# ---------------------------------------------------------------------------

def _scenarios() -> dict[str, ServeScenario]:
    catalog = (
        ServeScenario(
            name="ci-small",
            description="8-backend NAT fleet, one backend death + packet "
                        "loss; small enough for every CI seed",
            mode=IpvsMode.NAT,
            backends=8,
            duration_ms=1200.0,
            interval_ms=100.0,
            offered_load=0.70,
            shards=2,
            conns_per_shard=40,
            autoscaler=AutoscalerPolicy(
                min_backends=6,
                max_backends=16,
                up_p99_ms=30.0,
                down_p99_ms=8.0,
                down_utilization=0.55,
                up_step=2,
                down_step=1,
                cooldown_up_ms=200.0,
                cooldown_down_ms=400.0,
                spawn_delay_ms=150.0,
            ),
            slo=SloPolicy(p99_ms=30.0, recovery_window_ms=600.0),
            chaos=ChaosOverlay(
                start_ms=400.0,
                duration_ms=200.0,
                backend_kills=1,
                packet_loss_p=0.02,
            ),
        ),
        ServeScenario(
            name="fleet-100",
            description="100-backend direct-routing fleet under sustained "
                        "load with mid-run backend deaths and autoscaled "
                        "recovery (the tentpole scenario)",
            mode=IpvsMode.DIRECT_ROUTING,
            backends=100,
            duration_ms=2000.0,
            interval_ms=100.0,
            offered_load=0.72,
            shards=4,
            conns_per_shard=256,
            autoscaler=AutoscalerPolicy(
                min_backends=80,
                max_backends=140,
                up_p99_ms=40.0,
                down_p99_ms=10.0,
                down_utilization=0.60,
                up_step=5,
                down_step=2,
                cooldown_up_ms=200.0,
                cooldown_down_ms=500.0,
                spawn_delay_ms=150.0,
            ),
            slo=SloPolicy(p99_ms=40.0, recovery_window_ms=800.0),
            chaos=ChaosOverlay(
                start_ms=600.0,
                duration_ms=500.0,
                backend_kills=5,
                packet_loss_p=0.02,
            ),
        ),
        ServeScenario(
            name="fleet-nat",
            description="40-backend NAT fleet: the director carries every "
                        "response byte, so the same load leans on NAT "
                        "translation throughput",
            mode=IpvsMode.NAT,
            backends=40,
            duration_ms=1500.0,
            interval_ms=100.0,
            offered_load=0.70,
            shards=4,
            conns_per_shard=100,
            autoscaler=AutoscalerPolicy(
                min_backends=32,
                max_backends=64,
                up_p99_ms=30.0,
                down_p99_ms=8.0,
                down_utilization=0.55,
                up_step=4,
                down_step=2,
                cooldown_up_ms=200.0,
                cooldown_down_ms=500.0,
                spawn_delay_ms=150.0,
            ),
            slo=SloPolicy(p99_ms=30.0, recovery_window_ms=700.0),
            chaos=ChaosOverlay(
                start_ms=500.0,
                duration_ms=300.0,
                backend_kills=2,
                packet_loss_p=0.02,
            ),
        ),
    )
    return {scenario.name: scenario for scenario in catalog}


SCENARIOS: dict[str, ServeScenario] = _scenarios()


def get_scenario(name: str) -> ServeScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(
            f"unknown serve scenario {name!r} (known: {known})"
        ) from None


def scenario_names() -> list[str]:
    return sorted(SCENARIOS)
