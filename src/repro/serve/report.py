"""Deterministic rendering of a serve run.

Same seed + same scenario ⇒ byte-identical ``render()`` text and
``as_dict()`` JSON, matching the ``repro chaos`` contract: every float
is formatted with a fixed precision, every collection is emitted in a
deterministic order, and nothing host-dependent (worker count, wall
clock) appears anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.engine import ServeEngine, ServeResult
from repro.serve.scenario import ServeScenario, get_scenario


def _fmt_ms(value: float) -> str:
    return f"{value:.3f}"


@dataclass
class ServeReport:
    """A finished run plus its two deterministic renderings."""

    result: ServeResult

    # -- structured ----------------------------------------------------
    def as_dict(self) -> dict:
        r = self.result
        sc = r.scenario
        return {
            "scenario": sc.name,
            "seed": str(r.seed),
            "mode": sc.mode.value,
            "scheduler": sc.scheduler,
            "backends_initial": sc.backends,
            "backends_final": r.backends_final,
            "shards": sc.shards,
            "duration_ms": round(sc.duration_ms, 3),
            "interval_ms": round(sc.interval_ms, 3),
            "offered_rps": round(r.offered_rps, 3),
            "simulated_rps": round(r.simulated_rps, 3),
            "requests": r.requests,
            "completed": r.completed,
            "errors": r.errors,
            "retransmits": r.retransmits,
            "conn_churned": r.churned,
            "reconnects": r.reconnects,
            "latency_ms": {
                "p50": round(r.p50_ms, 3),
                "p99": round(r.p99_ms, 3),
                "p999": round(r.p999_ms, 3),
                "mean": round(r.mean_ms, 3),
            },
            "slo": {
                "p99_target_ms": sc.slo.p99_ms,
                "recovery_window_ms": sc.slo.recovery_window_ms,
                "chaos_window_end_ms": r.chaos_window_end_ms,
                "recovered_at_ms": (
                    round(r.recovered_at_ms, 3)
                    if r.recovered_at_ms is not None else None
                ),
                "recovery_ms": (
                    round(r.recovery_ms, 3)
                    if r.recovery_ms is not None else None
                ),
                "ok": r.slo_ok,
            },
            "intervals": [
                {
                    "t0_ms": round(row.t0_ms, 3),
                    "arrivals": row.arrivals,
                    "errors": row.errors,
                    "retransmits": row.retransmits,
                    "p50_ms": round(row.p50_ms, 3),
                    "p99_ms": round(row.p99_ms, 3),
                    "utilization": round(row.utilization, 4),
                    "alive": row.alive,
                    "provisioned": row.provisioned,
                    "queue_depth": round(row.queue_depth, 2),
                }
                for row in r.intervals
            ],
            "events": [
                {"t_ms": round(event.t_ms, 3), "text": event.text}
                for event in r.events
            ],
            "autoscaler": [
                {
                    "t_ms": round(d.t_ms, 3),
                    "direction": d.direction,
                    "amount": d.amount,
                    "backends_after": d.backends_after,
                    "reason": d.reason,
                }
                for d in r.decisions
            ],
            "faults": r.fault_counters,
            "fleet": r.fleet_exec,
            "ipvs": {
                "scheduled": r.ipvs_stats.scheduled,
                "conns_opened": r.ipvs_stats.conns_opened,
                "conns_closed": r.ipvs_stats.conns_closed,
                "conns_failed": r.ipvs_stats.conns_failed,
                "servers_added": r.ipvs_stats.servers_added,
                "servers_removed": r.ipvs_stats.servers_removed,
                "drains_started": r.ipvs_stats.drains_started,
                "backend_deaths": r.ipvs_stats.backend_deaths,
                "conservation_ok": r.conservation_ok,
            },
        }

    # -- text ----------------------------------------------------------
    def render(self) -> str:
        r = self.result
        sc = r.scenario
        lines = [
            f"serve report — scenario={sc.name} seed={r.seed}",
            f"  mode={sc.mode.value} scheduler={sc.scheduler} "
            f"backends={sc.backends} shards={sc.shards} "
            f"duration={sc.duration_ms:g}ms interval={sc.interval_ms:g}ms",
            f"  offered={r.offered_rps:.1f} req/s "
            f"(load {sc.offered_load:g}, tail alpha {sc.tail_alpha:g}, "
            f"keep-alive {sc.keepalive_requests})",
            "",
            "  interval  t0_ms   arrivals  errs  p50_ms   p99_ms   "
            "util   alive  prov  queue",
        ]
        for row in r.intervals:
            lines.append(
                f"  {row.index:>8}  {row.t0_ms:>6.0f}  "
                f"{row.arrivals:>8}  {row.errors:>4}  "
                f"{_fmt_ms(row.p50_ms):>7}  {_fmt_ms(row.p99_ms):>7}  "
                f"{row.utilization:>5.3f}  {row.alive:>5}  "
                f"{row.provisioned:>4}  {row.queue_depth:>5.1f}"
            )
        lines.append("")
        if r.events:
            lines.append("  events:")
            for event in r.events:
                lines.append(f"    {event.t_ms:>7.1f}ms  {event.text}")
            lines.append("")
        lines.append(
            f"  requests={r.requests} completed={r.completed} "
            f"errors={r.errors} retransmits={r.retransmits} "
            f"churned={r.churned} reconnects={r.reconnects}"
        )
        lines.append(
            f"  latency p50={_fmt_ms(r.p50_ms)}ms "
            f"p99={_fmt_ms(r.p99_ms)}ms p999={_fmt_ms(r.p999_ms)}ms "
            f"mean={_fmt_ms(r.mean_ms)}ms"
        )
        lines.append(f"  simulated throughput {r.simulated_rps:.1f} req/s")
        if r.chaos_window_end_ms is not None:
            recovered = (
                f"recovered at {_fmt_ms(r.recovered_at_ms)}ms "
                f"(+{_fmt_ms(r.recovery_ms)}ms after the chaos window)"
                if r.recovered_at_ms is not None
                else "never recovered"
            )
            lines.append(
                f"  slo p99<={sc.slo.p99_ms:g}ms "
                f"window={sc.slo.recovery_window_ms:g}ms: {recovered} "
                f"-> {'PASS' if r.slo_ok else 'FAIL'}"
            )
            lines.append("  faults:")
            lines.append(
                "    site                      occ  inj  retry  rec  fatal"
            )
            for site, c in sorted(r.fault_counters.items()):
                lines.append(
                    f"    {site:<24} {c['occurrences']:>4} "
                    f"{c['injected']:>4} {c['retried']:>6} "
                    f"{c['recovered']:>4} {c['fatal']:>6}"
                )
        else:
            lines.append(
                f"  slo p99<={sc.slo.p99_ms:g}ms: "
                f"{'PASS' if r.slo_ok else 'FAIL'}"
            )
        if r.fleet_exec is not None:
            fe = r.fleet_exec
            lines.append(
                f"  fleet domains={fe['domains_spawned']} "
                f"live={fe['domains_live']} "
                f"units={fe['units_completed']}/{fe['units_posted']} "
                f"wakes={fe['wake_events']} "
                f"instructions={fe['guest_instructions']} "
                f"fastforward={fe['fastforward_ms']:.3f}ms"
            )
        s = r.ipvs_stats
        lines.append(
            f"  ipvs scheduled={s.scheduled} opened={s.conns_opened} "
            f"closed={s.conns_closed} failed={s.conns_failed} "
            f"added={s.servers_added} removed={s.servers_removed} "
            f"deaths={s.backend_deaths} "
            f"conservation={'ok' if r.conservation_ok else 'VIOLATED'}"
        )
        return "\n".join(lines) + "\n"


def run_serve(
    scenario: ServeScenario | str,
    seed: int | str = 0,
    workers: int | None = None,
    engine: str = "hybrid",
) -> ServeReport:
    """Run a scenario (by name or instance) and wrap it for rendering.

    ``engine`` selects how the real backend domains execute: ``hybrid``
    fast-forwards parked domains on the event queue, ``stepped`` is the
    tick-by-tick oracle.  The report is byte-identical either way.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    result = ServeEngine(
        scenario, seed=seed, workers=workers, engine=engine
    ).run()
    return ServeReport(result)
