"""The open-loop traffic generator: per-shard, per-interval workers.

Arrivals are open-loop (clients do not wait for responses before
issuing the next request) with heavy-tailed inter-arrivals: each
exponential gap is modulated by a mean-one Pareto factor
``H = (alpha-1)/alpha * u^(-1/alpha)``, producing the bursts-and-lulls
shape of production front-end traffic while keeping the configured mean
rate exact.

Each shard owns a fixed pool of keep-alive client connections (backend
assignment decided by the IPVS director at the interval boundary) and a
shard-local view of every backend's backlog.  A shard's interval is a
**pure function**::

    (config, shard_idx, state, snapshot) -> (result, new_state)

with all randomness drawn from a ``DeterministicRng`` stream named by
``(seed, shard, interval)`` — no global state, no wall clock — so the
sharding runner can evaluate shards serially or across worker processes
and produce byte-identical results either way.

Capacity sharing: a backend is one vCPU serving all shards, so a shard
sees a fraction of it — every request advances the shard-local backlog
by ``service * (total_conns / shard_conns)`` while charging the request
a single service time.  Because a shard's traffic to a backend is
proportional to the connections it holds there, this divisor makes each
shard's queueing view consistent with the backend's true aggregate
load.  It is the per-CPU approximation real IPVS deployments make
(flow-hashed RX queues), and it keeps shards fully independent.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

from repro.perf.rand import DeterministicRng

#: Latency bucket edges (ns): quarter-octave geometric ladder from 50 µs
#: to ~4.8 s, fine enough for meaningful p999 interpolation.
SERVE_LATENCY_BUCKETS_NS: tuple[float, ...] = tuple(
    50_000.0 * (2.0 ** 0.25) ** k for k in range(67)
)


def heavy_tail_factor(rng: DeterministicRng, alpha: float) -> float:
    """A mean-one Pareto multiplier (``alpha > 1``)."""
    u = 1.0 - rng.random()  # (0, 1]: keeps u**(-1/alpha) finite
    return (alpha - 1.0) / alpha * u ** (-1.0 / alpha)


@dataclass(frozen=True)
class ShardConfig:
    """Static per-run configuration, shipped once to every worker."""

    seed: str
    shards: int
    #: Offered arrivals per second for ONE shard.
    rate_rps: float
    tail_alpha: float
    #: Per-request churn probability (1 / keep-alive budget).
    churn_p: float
    #: Request-class mix: parallel tuples (cumulative weight, work).
    mix_cum_weights: tuple[float, ...]
    mix_work: tuple[float, ...]
    backend_service_ns: float
    director_service_ns: float
    conn_setup_ns: float
    retry_penalty_ns: float
    buckets: tuple[float, ...] = SERVE_LATENCY_BUCKETS_NS


@dataclass(frozen=True)
class ShardSnapshot:
    """The engine's per-interval view pushed down to ONE shard."""

    interval_idx: int
    t0_ns: float
    t1_ns: float
    #: Backends dead as of the interval start: every request on one of
    #: their connections errors until the director re-schedules the
    #: connection at the next boundary.
    dead: frozenset[int]
    #: Packet-drop probability while the chaos window is open (0 off).
    loss_p: float
    #: Backend id -> this shard's capacity-share divisor, i.e.
    #: ``total_conns(b) / conns_in_this_shard(b)``: a shard holding
    #: half of a backend's connections sees half its capacity.  The
    #: engine recomputes this at every boundary from the director's
    #: live connection table, which keeps the shard-local queueing
    #: model consistent with the global wlc assignment.
    share_by_backend: tuple[tuple[int, float], ...]


@dataclass
class ShardState:
    """A shard's carry-over between intervals (picklable, no RNG)."""

    #: Backend id per connection slot (assigned by the director).
    conns: list[int]
    #: Slots opened at the last boundary: first request pays setup.
    fresh: list[bool]
    #: Shard-local backlog horizon per backend id (ns, absolute).
    backend_free_ns: dict[int, float]
    director_free_ns: float = 0.0


@dataclass
class ShardIntervalResult:
    """What one shard hands back for one control interval."""

    arrivals: int
    completed: int
    errors: int
    retransmits: int
    lat_bucket_counts: list[int]
    lat_sum: float
    lat_count: int
    served_by_backend: dict[int, int]
    busy_ns_by_backend: dict[int, float]
    #: Slots whose keep-alive budget expired (director re-schedules).
    churned_slots: tuple[int, ...]
    #: Backlog not yet drained at the interval end (ns, both tiers).
    queue_ns_end: float


def initial_shard_state(conns: list[int]) -> ShardState:
    return ShardState(
        conns=list(conns),
        fresh=[True] * len(conns),
        backend_free_ns={},
    )


def run_shard_interval(
    cfg: ShardConfig,
    shard_idx: int,
    state: ShardState,
    snap: ShardSnapshot,
) -> tuple[ShardIntervalResult, ShardState]:
    """One shard's interval — pure, deterministic, process-safe."""
    rng = DeterministicRng(
        f"{cfg.seed}:shard{shard_idx}:iv{snap.interval_idx}"
    )
    n_buckets = len(cfg.buckets)
    counts = [0] * n_buckets
    served: dict[int, int] = {}
    busy: dict[int, float] = {}
    churned: set[int] = set()
    arrivals = completed = errors = retransmits = 0
    lat_sum = 0.0
    n_conns = len(state.conns)
    director_share = float(cfg.shards)
    share_of = dict(snap.share_by_backend)
    default_share = float(cfg.shards)
    dserv = cfg.director_service_ns
    bserv_base = cfg.backend_service_ns
    dfree = state.director_free_ns
    bfree = state.backend_free_ns

    t = snap.t0_ns
    while True:
        gap = rng.expovariate(cfg.rate_rps) * heavy_tail_factor(
            rng, cfg.tail_alpha
        )
        t += gap * 1e9
        if t >= snap.t1_ns:
            break
        arrivals += 1
        slot = rng.randint(0, n_conns - 1)
        klass = bisect_left(cfg.mix_cum_weights, rng.random())
        if klass >= len(cfg.mix_work):  # float-edge guard
            klass = len(cfg.mix_work) - 1
        backend = state.conns[slot]
        if backend in snap.dead:
            # The connection died with its backend; the director
            # re-schedules it at the next control tick.
            errors += 1
            continue
        penalty = 0.0
        if snap.loss_p and rng.random() < snap.loss_p:
            # One bounded retransmit always lands (RetryPolicy spirit).
            retransmits += 1
            penalty = cfg.retry_penalty_ns
        # Director tier (NAT pays for both directions, DR barely).
        wait_d = dfree - t if dfree > t else 0.0
        dfree = (dfree if dfree > t else t) + dserv * director_share
        at_backend = t + wait_d + dserv
        if state.fresh[slot]:
            at_backend += cfg.conn_setup_ns
            penalty += cfg.conn_setup_ns
            state.fresh[slot] = False
        # Backend tier.
        service = bserv_base * cfg.mix_work[klass]
        free = bfree.get(backend, 0.0)
        wait_b = free - at_backend if free > at_backend else 0.0
        bfree[backend] = (
            free if free > at_backend else at_backend
        ) + service * share_of.get(backend, default_share)
        latency = wait_d + dserv + wait_b + service + penalty
        completed += 1
        lat_sum += latency
        index = bisect_left(cfg.buckets, latency)
        if index < n_buckets:
            counts[index] += 1
        served[backend] = served.get(backend, 0) + 1
        busy[backend] = busy.get(backend, 0.0) + service
        if slot not in churned and rng.random() < cfg.churn_p:
            churned.add(slot)

    # Prune drained backlogs; sum the residue in sorted order so float
    # accumulation is identical no matter how the dict was built.
    t1 = snap.t1_ns
    queue_ns = dfree - t1 if dfree > t1 else 0.0
    kept: dict[int, float] = {}
    for backend in sorted(bfree):
        free = bfree[backend]
        if free > t1:
            kept[backend] = free
            queue_ns += free - t1
    new_state = ShardState(
        conns=state.conns,
        fresh=state.fresh,
        backend_free_ns=kept,
        director_free_ns=dfree,
    )
    result = ShardIntervalResult(
        arrivals=arrivals,
        completed=completed,
        errors=errors,
        retransmits=retransmits,
        lat_bucket_counts=counts,
        lat_sum=lat_sum,
        lat_count=completed,
        served_by_backend=served,
        busy_ns_by_backend=busy,
        churned_slots=tuple(sorted(churned)),
        queue_ns_end=queue_ns,
    )
    return result, new_state


def mix_tables(
    weights_and_work: tuple[tuple[float, float], ...],
) -> tuple[tuple[float, ...], tuple[float, ...]]:
    """Normalized cumulative-weight and work lookup tables."""
    total = sum(w for w, _ in weights_and_work)
    cum: list[float] = []
    running = 0.0
    for weight, _ in weights_and_work:
        running += weight / total
        cum.append(running)
    cum[-1] = 1.0  # close the float gap so bisect never falls off
    return tuple(cum), tuple(work for _, work in weights_and_work)
