"""The backend-count control loop.

Reads its three signals from the ``repro.obs`` registry — the interval
p99 latency gauge, the fleet utilization gauge, and the backend count —
and emits scale decisions under hysteresis and per-direction cooldowns:

* **up** when p99 breaches ``up_p99_ms`` (latency is the user-facing
  signal, so it alone can trigger growth);
* **down** only when p99 is comfortably below ``down_p99_ms`` AND mean
  utilization is below ``down_utilization`` — both, so a quiet tail on
  a busy fleet never sheds capacity;
* nothing while the direction's cooldown is running, which keeps the
  loop from chasing its own spawn delay (a just-spawned backend takes
  ``spawn_delay_ms`` to matter, and pending spawns count toward the
  fleet size precisely so the loop sees its in-flight decisions).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.registry import Registry
from repro.serve.scenario import AutoscalerPolicy


@dataclass(frozen=True)
class AutoscaleDecision:
    """One control action, recorded verbatim in the run report."""

    t_ms: float
    direction: str  # "up" | "down"
    amount: int
    reason: str
    backends_after: int


class Autoscaler:
    """Hysteresis + cooldown controller over registry signals."""

    def __init__(self, policy: AutoscalerPolicy, registry: Registry) -> None:
        self.policy = policy
        self.registry = registry
        self._last_up_ms = float("-inf")
        self._last_down_ms = float("-inf")
        self.decisions: list[AutoscaleDecision] = []

    def decide(self, now_ms: float) -> AutoscaleDecision | None:
        """Evaluate the signals at a control tick; maybe act."""
        p99_ms = self.registry.value("serve_interval_p99_ms")
        utilization = self.registry.value("serve_fleet_utilization")
        fleet = int(self.registry.value("serve_backends_provisioned"))
        policy = self.policy
        decision: AutoscaleDecision | None = None
        if (
            p99_ms > policy.up_p99_ms
            and now_ms - self._last_up_ms >= policy.cooldown_up_ms
            and fleet < policy.max_backends
        ):
            amount = min(policy.up_step, policy.max_backends - fleet)
            self._last_up_ms = now_ms
            decision = AutoscaleDecision(
                t_ms=now_ms,
                direction="up",
                amount=amount,
                reason=(
                    f"p99 {p99_ms:.3f}ms > {policy.up_p99_ms:g}ms"
                ),
                backends_after=fleet + amount,
            )
        elif (
            p99_ms < policy.down_p99_ms
            and utilization < policy.down_utilization
            and now_ms - self._last_down_ms >= policy.cooldown_down_ms
            and fleet > policy.min_backends
        ):
            amount = min(policy.down_step, fleet - policy.min_backends)
            self._last_down_ms = now_ms
            decision = AutoscaleDecision(
                t_ms=now_ms,
                direction="down",
                amount=amount,
                reason=(
                    f"p99 {p99_ms:.3f}ms < {policy.down_p99_ms:g}ms, "
                    f"util {utilization:.3f} < "
                    f"{policy.down_utilization:g}"
                ),
                backends_after=fleet - amount,
            )
        if decision is not None:
            self.decisions.append(decision)
        return decision
