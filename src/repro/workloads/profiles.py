"""Request profiles for the macro/LibOS workloads.

Each profile encodes the serving cost structure of one application, derived
from how these servers actually handle a request (epoll wakeup + reads +
writes + logging for NGINX; recv/process/send for the key-value stores;
CGI + SQL round-trips for PHP+MySQL).  Absolute numbers are calibrated so
the *relative* results match the paper's figures; the calibration tests in
``tests/experiments`` pin the bands.
"""

from __future__ import annotations

from repro.workloads.base import RequestProfile

#: NGINX serving a static page (Fig 3.1, Fig 6a/6b).  ~14 syscalls per
#: request (accept/epoll/recv/open/fstat/writev/sendfile/log/close...).
NGINX = RequestProfile(
    name="nginx",
    syscalls=14,
    kernel_work_ns=5000,
    app_work_ns=12000,
    bytes_in=450,
    bytes_out=14000,
    ctx_switches=0.05,
    processes=1,
    threads_per_process=1,
)

#: memcached driven by memtier at 1:10 SET:GET (Fig 3.2).  Tiny payloads,
#: very high syscall intensity (epoll/recv/send per op across 4 worker
#: threads, the 1.5.7 default) and little user-space work — the shape that
#: maximizes X-Containers' advantage (§5.3: +134 % to +208 %).
MEMCACHED = RequestProfile(
    name="memcached",
    syscalls=16,
    kernel_work_ns=2000,
    app_work_ns=500,
    bytes_in=120,
    bytes_out=1100,
    ctx_switches=0.20,
    processes=1,
    threads_per_process=4,
    net_intensity=2.5,
)

#: Redis driven by memtier at 1:10 SET:GET (Fig 3.3).  Single-threaded,
#: pipelining amortizes syscalls, more user-space work per op — which is
#: why X-Containers only tie Docker here (§5.3).
REDIS = RequestProfile(
    name="redis",
    syscalls=4,
    kernel_work_ns=500,
    app_work_ns=10000,
    bytes_in=110,
    bytes_out=850,
    ctx_switches=0.05,
    processes=1,
    threads_per_process=1,
    net_intensity=0.35,
)

#: PHP's built-in webserver executing a CGI page that issues one read and
#: one write query (Fig 6c).  Script execution dominates.
PHP_SERVER = RequestProfile(
    name="php",
    syscalls=28,
    kernel_work_ns=9000,
    app_work_ns=200000,
    bytes_in=500,
    bytes_out=2400,
    ctx_switches=0.4,
)

#: MySQL serving one simple query (half of the Fig 6c page's DB work).
MYSQL_QUERY = RequestProfile(
    name="mysql-query",
    syscalls=11,
    kernel_work_ns=7500,
    app_work_ns=45000,
    bytes_in=300,
    bytes_out=600,
    ctx_switches=0.3,
)

#: NGINX + PHP-FPM pod used by the scalability experiment (Fig 8): 4
#: processes per container, dynamic page, FastCGI hand-offs between the
#: NGINX worker and PHP-FPM.
NGINX_PHP_FPM = RequestProfile(
    name="nginx-php-fpm",
    syscalls=20,
    kernel_work_ns=8000,
    app_work_ns=70000,
    bytes_in=500,
    bytes_out=6000,
    ctx_switches=1.2,
    processes=4,
)

ALL_PROFILES = {
    profile.name: profile
    for profile in (
        NGINX,
        MEMCACHED,
        REDIS,
        PHP_SERVER,
        MYSQL_QUERY,
        NGINX_PHP_FPM,
    )
}
