"""Workload modelling: request profiles and the closed-loop server model.

A :class:`RequestProfile` describes what serving ONE request costs in
platform-independent terms: how many syscalls the server issues, how much
kernel work (socket buffers, TCP, VFS) and application work it does, the
payload sizes, and how many involuntary context switches it suffers.  The
:class:`ServerModel` then prices a profile on a concrete platform and
cloud site:

    per_request_cpu = syscalls * platform.syscall_cost
                    + kernel_work * platform.kernel_work_factor
                    + app_work
                    + netstack(request/response) * site.io_scale
                    + platform.net_request_extra          (DNAT etc.)
                    + ctx_switches * platform.ctx_switch_cost

Closed-loop throughput is then ``parallelism / per_request_cpu`` (capped by
the NIC line rate), and mean latency follows from Little's law at the
client's concurrency — exactly how the paper's wrk/ab/memtier runs behave.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cloud.instances import CloudSite, LOCAL_CLUSTER
from repro.perf.rand import DeterministicRng
from repro.platforms.base import Platform

#: 10 Gbit/s line rate of the paper's local cluster switch (§5.5).
LINE_RATE_BITS_PER_S = 10e9


@dataclass(frozen=True)
class RequestProfile:
    """Platform-independent cost description of one served request."""

    name: str
    #: Syscall invocations per request on the server.
    syscalls: float
    #: Kernel work per request (ns on the reference kernel), excluding the
    #: network stack (priced separately).
    kernel_work_ns: float
    #: User-space application work per request (ns).
    app_work_ns: float
    bytes_in: int
    bytes_out: int
    #: Involuntary context switches per request.
    ctx_switches: float = 0.0
    #: Scale on the per-request TCP/IP stack work (pipelined small-segment
    #: protocols do less stack work per operation than full HTTP).
    net_intensity: float = 1.0
    #: Worker processes the server runs (Fig 6b uses 4).
    processes: int = 1
    #: Threads per worker available for parallelism.
    threads_per_process: int = 1

    def with_processes(self, processes: int) -> "RequestProfile":
        return replace(self, processes=processes)


@dataclass
class ServerResult:
    """One measured configuration."""

    platform: str
    workload: str
    throughput_rps: float
    mean_latency_ms: float
    per_request_us: float


class ServerModel:
    """Prices a request profile on one platform at one site."""

    def __init__(
        self,
        platform: Platform,
        site: CloudSite = LOCAL_CLUSTER,
        rng: DeterministicRng | None = None,
        port_forwarding: bool = True,
    ) -> None:
        self.platform = platform
        self.site = site
        self.rng = rng
        #: §5.3 exposes cloud servers via iptables DNAT; the §5.5 local
        #: cluster talks to servers directly.
        self.port_forwarding = port_forwarding

    # ------------------------------------------------------------------
    # Cost composition
    # ------------------------------------------------------------------
    def per_request_ns(self, profile: RequestProfile) -> float:
        p = self.platform
        netstack = p.make_netstack(p.make_kernel())
        net = (
            netstack.request_response_cost_ns(
                profile.bytes_in, profile.bytes_out, profile.net_intensity
            )
            * self.site.io_scale
        )
        extra = p.net_request_extra_ns() if self.port_forwarding else 0.0
        total = (
            profile.syscalls * p.syscall_cost_ns()
            + profile.kernel_work_ns * p.kernel_work_factor()
            + profile.app_work_ns
            + net
            + extra
            + profile.ctx_switches * p.ctx_switch_cost_ns()
        )
        return total * self.site.cost_scale

    def parallelism(self, profile: RequestProfile) -> float:
        """Cores the server can actually keep busy."""
        processes = profile.processes
        if not self.platform.multicore_processing:
            # §2.3: gVisor/UML spawn multiple processes but run only one
            # at a time (threads within it still run).
            processes = 1
        if self.platform.max_processes is not None:
            processes = min(processes, self.platform.max_processes)
        wanted = processes * profile.threads_per_process
        return float(min(wanted, self.site.machine.threads))

    def line_rate_rps(self, profile: RequestProfile) -> float:
        bits = (profile.bytes_in + profile.bytes_out) * 8
        if bits == 0:
            return float("inf")
        return LINE_RATE_BITS_PER_S / bits

    # ------------------------------------------------------------------
    # Closed-loop measurement
    # ------------------------------------------------------------------
    def measure(
        self,
        profile: RequestProfile,
        concurrency: int = 32,
        noise: float = 0.0,
    ) -> ServerResult:
        """Throughput/latency under a closed-loop client."""
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1: {concurrency}")
        per_request = self.per_request_ns(profile)
        if noise and self.rng is not None:
            per_request *= self.rng.gauss_factor(noise)
        cpu_rps = self.parallelism(profile) * 1e9 / per_request
        throughput = min(cpu_rps, self.line_rate_rps(profile))
        # Little's law: N = X * R  =>  R = N / X.
        latency_ms = concurrency / throughput * 1e3
        return ServerResult(
            platform=self.platform.name
            + ("" if self.platform.patched else "-unpatched"),
            workload=profile.name,
            throughput_rps=throughput,
            mean_latency_ms=latency_ms,
            per_request_us=per_request / 1e3,
        )
