"""The Fig 6c application, functionally: PHP pages backed by MiniDB.

A :class:`PhpApp` renders a dynamic page by issuing one read and one
write query (equal probability of read/write per the paper — here one of
each per page) to a database server across the socket fabric.  The
database can live in another kernel (Shared / Dedicated, Fig 7a/7b) or in
the same kernel over loopback (Dedicated&Merged, Fig 7c) — the merged
deployment is what only X-Containers can do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.guest.kernel import GuestKernel
from repro.guest.minidb import MiniDB, serve_query
from repro.guest.netstack import NetDevice
from repro.guest.socket import SocketError, SocketLayer, VirtualNetwork

DB_PORT = 3306


class MySqlServer:
    """MiniDB behind the text wire protocol, one kernel process."""

    def __init__(
        self,
        kernel: GuestKernel,
        network: VirtualNetwork,
        address: tuple[str, int],
    ) -> None:
        self.kernel = kernel
        self.db = MiniDB(kernel.clock)
        self.sockets = SocketLayer(kernel, network)
        self.proc = kernel.spawn("mysqld")
        self.listen_fd = self.sockets.socket(self.proc.pid)
        self.sockets.bind(self.proc.pid, self.listen_fd, address)
        self.sockets.listen(self.proc.pid, self.listen_fd)
        self.queries_served = 0

    def bootstrap_schema(self) -> None:
        self.db.execute("CREATE TABLE counters (name, hits)")
        self.db.execute("INSERT INTO counters VALUES ('page', 0)")

    def pump(self) -> int:
        """Serve every pending connection; returns queries handled."""
        served = 0
        while True:
            try:
                conn = self.sockets.accept(self.proc.pid, self.listen_fd)
            except SocketError:
                return served
            request = self.sockets.recv(self.proc.pid, conn, 65536)
            self.sockets.send(
                self.proc.pid, conn, serve_query(self.db, request)
            )
            self.sockets.close(self.proc.pid, conn)
            self.queries_served += 1
            served += 1


@dataclass
class PageResult:
    body: str
    hits: int


class PhpApp:
    """The PHP CGI server side: renders pages against a database."""

    def __init__(
        self,
        kernel: GuestKernel,
        network: VirtualNetwork,
        db_address: tuple[str, int],
        db_pump,
    ) -> None:
        self.kernel = kernel
        self.sockets = SocketLayer(kernel, network)
        self.proc = kernel.spawn("php")
        self.db_address = db_address
        self._db_pump = db_pump
        self.pages_rendered = 0

    def _query(self, sql: str) -> bytes:
        fd = self.sockets.socket(self.proc.pid)
        self.sockets.connect(self.proc.pid, fd, self.db_address)
        self.sockets.send(self.proc.pid, fd, b"QUERY " + sql.encode())
        self._db_pump()
        reply = self.sockets.recv(self.proc.pid, fd, 65536)
        self.sockets.close(self.proc.pid, fd)
        if reply.startswith(b"ERR"):
            raise RuntimeError(reply.decode())
        return reply

    def render_page(self) -> PageResult:
        """One page: read the counter, increment it (one read + one
        write query, §5.5)."""
        rows = self._query("SELECT hits FROM counters WHERE name = 'page'")
        hits = int(rows[len(b"ROWS "):].split(b";")[0])
        self._query(
            f"UPDATE counters SET hits = {hits + 1} WHERE name = 'page'"
        )
        self.pages_rendered += 1
        return PageResult(
            body=f"<html>visits: {hits + 1}</html>", hits=hits + 1
        )


def build_dedicated_deployment(clock=None):
    """Fig 7b: PHP and MySQL in separate kernels over the virtual net."""
    network = VirtualNetwork(clock=clock)
    db_kernel = GuestKernel(clock=clock, net_device=NetDevice.NETFRONT)
    mysql = MySqlServer(db_kernel, network, ("10.0.0.2", DB_PORT))
    mysql.bootstrap_schema()
    php_kernel = GuestKernel(clock=clock, net_device=NetDevice.NETFRONT)
    php = PhpApp(php_kernel, network, ("10.0.0.2", DB_PORT), mysql.pump)
    return php, mysql


def build_merged_deployment(clock=None):
    """Fig 7c: PHP and MySQL in ONE kernel, queries over loopback."""
    network = VirtualNetwork(clock=clock)
    kernel = GuestKernel(clock=clock, net_device=NetDevice.LOOPBACK)
    mysql = MySqlServer(kernel, network, ("127.0.0.1", DB_PORT))
    mysql.bootstrap_schema()
    php = PhpApp(kernel, network, ("127.0.0.1", DB_PORT), mysql.pump)
    return php, mysql
