"""The Table 1 application corpus.

For each of the twelve applications the paper evaluates ABOM against, we
model the application's *dynamic syscall-site mix*: how many invocations
per unit of work flow through each wrapper shape (glibc ``mov %eax``,
``mov %rax``, the Go runtime stack pattern, libpthread cancellable
wrappers, bare syscalls).  The mixes are chosen from the paper's findings —
glibc/Go wrappers are patchable, libpthread cancellable wrappers are not,
MySQL's two libpthread sites dominate its unpatched share — so that the
*measured* reduction (ABOM really runs over the synthetic binary) lands on
the Table 1 values.

A trace binary executes one "round" of the mix (1000 syscall invocations
spread over the app's sites) and halts; the experiment runs a warm-up
round (during which ABOM patches every recognizable site) and then a
measured round.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.assembler import Assembler
from repro.arch.binary import Binary, SitePattern, SyscallSite
from repro.arch.registers import Reg
from repro.core.offline import OfflinePatcher
from repro.core.xcontainer import XContainer
from repro.core.xlibos import CountingServices


@dataclass(frozen=True)
class SiteSpec:
    """One syscall site and its per-round invocation count."""

    style: str  # assembler syscall_site style
    nr: int
    count: int
    symbol: str


@dataclass
class AppSpec:
    """One Table 1 row."""

    name: str
    description: str
    language: str
    benchmark: str
    sites: list[SiteSpec]
    #: Symbols of sites the offline tool patches (MySQL's two libpthread
    #: locations, §5.2).
    offline_symbols: tuple[str, ...] = ()
    #: The paper's reported reduction (fraction), for documentation and
    #: for the experiment report's "paper" column.
    paper_reduction: float = 1.0
    paper_manual_reduction: float | None = None

    @property
    def invocations_per_round(self) -> int:
        return sum(site.count for site in self.sites)

    def patchable_fraction(self) -> float:
        """What ABOM should convert, from the site mix alone."""
        patchable = {
            "mov_eax": True,
            "mov_rax": True,
            "go_stack": True,
            "cancellable": False,
            "bare": False,
        }
        good = sum(s.count for s in self.sites if patchable[s.style])
        return good / self.invocations_per_round


def build_trace_binary(app: AppSpec, base: int = 0x400000) -> Binary:
    """One round of the app's syscall mix as machine code."""
    asm = Assembler(base=base)
    for index, site in enumerate(app.sites):
        loop = f"site{index}"
        asm.mov_imm32(Reg.RBX, site.count)
        asm.label(loop)
        if site.style == "go_stack":
            asm.mov_imm64_low(Reg.RCX, site.nr)
            asm.store_rsp64(8, Reg.RCX)
        elif site.style == "bare":
            asm.mov_imm32(Reg.RAX, site.nr)
            asm.nop(1)
        asm.syscall_site(site.nr, style=site.style, symbol=site.symbol)
        asm.dec(Reg.RBX)
        asm.jne(loop)
    asm.hlt()
    return asm.build(app.name)


@dataclass
class ReductionResult:
    app: str
    abom_reduction: float
    offline_reduction: float | None
    paper_reduction: float
    paper_manual_reduction: float | None
    sites_patched: int


def measure_reduction(
    app: AppSpec, with_offline: bool | None = None
) -> ReductionResult:
    """Run the app's trace with ABOM and report the syscall reduction.

    One warm-up round lets ABOM patch every site it recognizes (the paper's
    steady-state counter ignores cold-start); the reduction is measured
    over a second round.  When the app has offline-patchable sites, a
    second container additionally applies the offline tool first.
    """
    binary = build_trace_binary(app)

    def run_measured(offline: bool) -> tuple[float, int]:
        xc = XContainer(CountingServices(), abom_enabled=True)
        xc.load(binary)
        if offline:
            sites = [
                binary.site_for_symbol(symbol)
                for symbol in app.offline_symbols
            ]
            OfflinePatcher(xc.memory).patch_sites(binary, sites)
        xc.run_loaded(binary.entry)  # warm-up round: ABOM patches
        before_light = xc.libos.stats.lightweight_syscalls
        before_total = xc.libos.stats.total_syscalls
        xc.run_loaded(binary.entry)  # measured round
        light = xc.libos.stats.lightweight_syscalls - before_light
        total = xc.libos.stats.total_syscalls - before_total
        return light / total, len(xc.abom_stats.patched_sites)

    abom_reduction, patched = run_measured(offline=False)
    offline_reduction = None
    if with_offline or (with_offline is None and app.offline_symbols):
        offline_reduction, _ = run_measured(offline=True)
    return ReductionResult(
        app=app.name,
        abom_reduction=abom_reduction,
        offline_reduction=offline_reduction,
        paper_reduction=app.paper_reduction,
        paper_manual_reduction=app.paper_manual_reduction,
        sites_patched=patched,
    )


def _glibc_mix(counts_and_nrs, prefix: str) -> list[SiteSpec]:
    specs = []
    for index, (style, nr, count) in enumerate(counts_and_nrs):
        specs.append(SiteSpec(style, nr, count, f"{prefix}_{index}"))
    return specs


#: The twelve Table 1 applications.  Counts are per round of 1000
#: invocations; the unpatchable share matches the paper's reduction.
TABLE1_APPS: list[AppSpec] = [
    AppSpec(
        "memcached", "Memory caching system", "C/C++", "memtier_benchmark",
        _glibc_mix(
            [("mov_eax", 232, 300), ("mov_eax", 45, 280),
             ("mov_eax", 47, 270), ("mov_rax", 1, 150)],
            "memcached",
        ),
        paper_reduction=1.00,
    ),
    AppSpec(
        "redis", "In-memory database", "C/C++", "redis-benchmark",
        _glibc_mix(
            [("mov_eax", 232, 350), ("mov_eax", 0, 330),
             ("mov_rax", 1, 320)],
            "redis",
        ),
        paper_reduction=1.00,
    ),
    AppSpec(
        "etcd", "Key-value store", "Go", "etcd-benchmark",
        _glibc_mix(
            [("go_stack", 0, 340), ("go_stack", 1, 330),
             ("go_stack", 281, 330)],
            "etcd",
        ),
        paper_reduction=1.00,
    ),
    AppSpec(
        "mongodb", "NoSQL Database", "C/C++", "YCSB",
        _glibc_mix(
            [("mov_eax", 0, 300), ("mov_eax", 1, 300),
             ("mov_rax", 17, 200), ("mov_eax", 232, 200)],
            "mongodb",
        ),
        paper_reduction=1.00,
    ),
    AppSpec(
        "influxdb", "Time series database", "Go", "influxdb-comparisons",
        _glibc_mix(
            [("go_stack", 0, 400), ("go_stack", 1, 350),
             ("go_stack", 202, 250)],
            "influxdb",
        ),
        paper_reduction=1.00,
    ),
    AppSpec(
        "postgres", "Database", "C/C++", "pgbench",
        _glibc_mix(
            [("mov_eax", 0, 400), ("mov_eax", 1, 350),
             ("mov_rax", 17, 248), ("bare", 14, 2)],
            "postgres",
        ),
        paper_reduction=0.998,
    ),
    AppSpec(
        "fluentd", "Data collector", "Ruby", "fluentd-benchmark",
        _glibc_mix(
            [("mov_eax", 1, 500), ("mov_eax", 0, 300),
             ("mov_rax", 232, 194), ("bare", 14, 6)],
            "fluentd",
        ),
        paper_reduction=0.994,
    ),
    AppSpec(
        "elasticsearch", "Search engine", "JAVA",
        "elasticsearch-stress-test",
        _glibc_mix(
            [("mov_eax", 202, 400), ("mov_eax", 0, 300),
             ("mov_rax", 1, 288), ("bare", 14, 12)],
            "elasticsearch",
        ),
        paper_reduction=0.988,
    ),
    AppSpec(
        "rabbitmq", "Message broker", "Erlang", "rabbitmq-perf-test",
        _glibc_mix(
            [("mov_eax", 0, 400), ("mov_eax", 1, 300),
             ("mov_rax", 232, 286), ("bare", 14, 14)],
            "rabbitmq",
        ),
        paper_reduction=0.986,
    ),
    AppSpec(
        "kernel-compile", "Code Compilation", "Various tools",
        "Linux kernel with tiny config",
        _glibc_mix(
            [("mov_eax", 0, 350), ("mov_eax", 1, 300),
             ("mov_rax", 9, 200), ("mov_eax", 3, 103),
             ("bare", 59, 47)],
            "kcc",
        ),
        paper_reduction=0.953,
    ),
    AppSpec(
        "nginx", "Webserver", "C/C++", "Apache ab",
        _glibc_mix(
            [("mov_eax", 232, 300), ("mov_eax", 0, 250),
             ("mov_eax", 1, 223), ("mov_rax", 40, 150),
             ("bare", 13, 77)],
            "nginx",
        ),
        paper_reduction=0.923,
    ),
    AppSpec(
        "mysql", "Database", "C/C++", "sysbench",
        # 44.6 % of invocations flow through plain glibc wrappers; 47.6 %
        # through the two libpthread cancellable wrappers ABOM cannot see
        # (§5.2); the rest are bare sites.
        _glibc_mix(
            [("mov_eax", 232, 246), ("mov_eax", 16, 200)],
            "mysql_glibc",
        )
        + [
            SiteSpec("cancellable", 0, 238, "pthread_read"),
            SiteSpec("cancellable", 1, 238, "pthread_write"),
        ]
        + _glibc_mix([("bare", 14, 78)], "mysql_bare"),
        offline_symbols=("pthread_read", "pthread_write"),
        paper_reduction=0.446,
        paper_manual_reduction=0.922,
    ),
]

APP_BY_NAME = {app.name: app for app in TABLE1_APPS}
