"""A functional wrk: drives the real HTTP stack and reports a latency
histogram measured in *simulated* time.

Complements :class:`repro.workloads.clients.WrkClient` (which prices a
profile analytically): here every request actually flows — connect,
parse, RamFS read, respond — and the per-request latency is the simulated
time the whole path consumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.guest.kernel import GuestKernel
from repro.guest.netstack import NetDevice
from repro.guest.socket import VirtualNetwork
from repro.perf.clock import SimClock
from repro.perf.stats import RunStats, percentile
from repro.workloads.http import HttpClient, StaticHttpServer


@dataclass
class WrkRunReport:
    requests: int
    errors: int
    duration_ms: float
    throughput_rps: float
    latency_us: RunStats

    def latency_pct_us(self, pct: float) -> float:
        return percentile(self.latency_us.samples, pct)


class FunctionalWrk:
    """Synchronous closed-loop driver over the functional HTTP stack."""

    def __init__(
        self,
        server_device: NetDevice = NetDevice.BRIDGE,
        page_bytes: int = 4096,
        path: str = "/index.html",
        clock: SimClock | None = None,
        telemetry=None,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.network = VirtualNetwork(clock=self.clock)
        server_kernel = GuestKernel(clock=self.clock,
                                    net_device=server_device)
        self.server = StaticHttpServer(server_kernel, self.network)
        self.server.publish(path, b"x" * page_bytes)
        self.path = path
        client_kernel = GuestKernel(clock=self.clock)
        self.client = HttpClient(
            client_kernel, self.network, self.server.handle_one
        )
        #: Optional :class:`repro.obs.Telemetry` (or scoped registry);
        #: when set, :meth:`run` records a per-request latency histogram
        #: and an ``http.request`` span per request, and the server's and
        #: server kernel netstack's counters are bound lazily.
        self.telemetry = telemetry
        if telemetry is not None:
            from repro.obs import wire

            registry = getattr(telemetry, "registry", telemetry)
            wire.wire_http_server(registry, self.server)
            wire.wire_netstack(registry, server_kernel.netstack)

    def run(self, requests: int = 100) -> WrkRunReport:
        if requests < 1:
            raise ValueError(f"requests must be >= 1: {requests}")
        latencies = RunStats("us")
        latency_hist = None
        if self.telemetry is not None:
            latency_hist = self.telemetry.histogram(
                "net_http_request_latency_ns",
                help="simulated end-to-end HTTP request latency",
            )
        errors = 0
        start_ns = self.clock.now_ns
        for _ in range(requests):
            before = self.clock.now_ns
            if self.telemetry is not None:
                with self.telemetry.span("http.request", path=self.path):
                    status, _body = self.client.get(
                        ("10.0.0.1", 80), self.path
                    )
            else:
                status, _body = self.client.get(("10.0.0.1", 80), self.path)
            if status != 200:
                errors += 1
            latency = self.clock.now_ns - before
            latencies.add(latency / 1e3)
            if latency_hist is not None:
                latency_hist.observe(latency)
        duration_ns = self.clock.now_ns - start_ns
        return WrkRunReport(
            requests=requests,
            errors=errors,
            duration_ms=duration_ns / 1e6,
            throughput_rps=requests / (duration_ns / 1e9),
            latency_us=latencies,
        )
