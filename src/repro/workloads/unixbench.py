"""UnixBench microbenchmarks (§5.4, Figs 4 and 5).

Each benchmark mirrors its UnixBench namesake:

* **System Call** — a tight loop of dup/close/getpid/getuid/umask, built as
  a real machine-code binary and executed on the CPU interpreter through
  each platform's syscall path (including real ABOM patching for
  X-Containers);
* **Execl** — repeated ``execve`` overlays;
* **File Copy** — copy a file through a 1 KB buffer;
* **Pipe Throughput** — one process reading and writing a pipe;
* **Context Switching** — two processes ping-ponging over a pipe;
* **Process Creation** — ``fork`` + ``wait``.

All report iterations (or KB) per second of simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.assembler import Assembler
from repro.arch.binary import Binary
from repro.arch.registers import Reg
from repro.guest.kernel import SYS
from repro.guest.vfs import O_CREAT, O_RDONLY, O_RDWR
from repro.perf.clock import SimClock
from repro.platforms.base import Platform

#: The §5.4 System Call benchmark's syscalls.
SYSCALL_BENCH_CALLS = ("dup", "close", "getpid", "getuid", "umask")


def build_syscall_bench(iterations: int, base: int = 0x400000) -> Binary:
    """The UnixBench System Call loop as real machine code.

    getpid/getuid/dup/close use the glibc ``mov %eax`` shape; umask uses
    the ``mov %rax`` 9-byte shape, so the benchmark exercises both ABOM
    patch forms.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1: {iterations}")
    asm = Assembler(base=base)
    asm.mov_imm32(Reg.RBX, iterations)
    asm.label("loop")
    asm.syscall_site(SYS["dup"], style="mov_eax", symbol="dup")
    asm.syscall_site(SYS["close"], style="mov_eax", symbol="close")
    asm.syscall_site(SYS["getpid"], style="mov_eax", symbol="getpid")
    asm.syscall_site(SYS["getuid"], style="mov_eax", symbol="getuid")
    asm.syscall_site(SYS["umask"], style="mov_rax", symbol="umask")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build("unixbench_syscall")


@dataclass
class BenchScore:
    name: str
    iterations_per_s: float


def syscall_bench(
    platform: Platform, iterations: int = 400, concurrency: int = 1
) -> BenchScore:
    """System Call throughput (loops/second of simulated time).

    ``concurrency`` models the §5.4 concurrent runs: on patched kernels,
    concurrent syscall storms contend on the shadow page tables and TLB,
    amplifying the KPTI tax slightly.
    """
    binary = build_syscall_bench(iterations)
    run = platform.run_binary(binary)
    elapsed = run.elapsed_ns
    if concurrency > 1 and platform.patched:
        name = platform.name.lower()
        if "x-container" not in name and "clear" not in name:
            elapsed *= 1.0 + 0.02 * concurrency
    return BenchScore("syscall", iterations / (elapsed / 1e9))


#: Syscalls around one exec: execve itself plus the loader's open/mmap/
#: read/close traffic for the new image.
EXECL_SYSCALLS_PER_ITER = 15


def execl_bench(platform: Platform, iterations: int = 50) -> BenchScore:
    """Execl throughput: repeated binary overlays."""
    clock = SimClock()
    kernel = platform.make_kernel(clock)
    kernel.mmu.clock = clock
    proc = kernel.spawn("execl_bench")
    for i in range(iterations):
        clock.advance(EXECL_SYSCALLS_PER_ITER * platform.syscall_cost_ns())
        kernel.execve(proc.pid, f"image-{i}")
    return BenchScore("execl", iterations / (clock.now_s))


def file_copy_bench(
    platform: Platform,
    file_kb: int = 256,
    buffer_bytes: int = 1024,
) -> BenchScore:
    """File Copy with a 1 KB buffer; reports KB/s of simulated time."""
    clock = SimClock()
    kernel = platform.make_kernel(clock)
    proc = kernel.spawn("fcopy")
    kernel.vfs.create("/tmp/src", b"x" * (file_kb * 1024))
    src = kernel.open(proc.pid, "/tmp/src", O_RDONLY)
    dst = kernel.open(proc.pid, "/tmp/dst", O_RDWR | O_CREAT)
    copied = 0
    while True:
        clock.advance(2 * platform.syscall_cost_ns())  # read + write
        data = kernel.read(proc.pid, src, buffer_bytes)
        if not data:
            break
        kernel.write(proc.pid, dst, data)
        copied += len(data)
    assert copied == file_kb * 1024
    return BenchScore("file_copy", (copied / 1024) / clock.now_s)


def pipe_bench(platform: Platform, iterations: int = 2000) -> BenchScore:
    """Pipe Throughput: one process writing and reading 512 B messages."""
    clock = SimClock()
    kernel = platform.make_kernel(clock)
    proc = kernel.spawn("pipe_bench")
    rfd, wfd = kernel.pipe(proc.pid)
    payload = b"p" * 512
    for _ in range(iterations):
        clock.advance(2 * platform.syscall_cost_ns())
        kernel.write(proc.pid, wfd, payload)
        kernel.read(proc.pid, rfd, len(payload))
    return BenchScore("pipe", iterations / clock.now_s)


def context_switch_bench(
    platform: Platform, iterations: int = 1000
) -> BenchScore:
    """Context Switching: two processes ping-pong over two pipes."""
    clock = SimClock()
    kernel = platform.make_kernel(clock)
    ping = kernel.spawn("ping")
    r1, w1 = kernel.pipe(ping.pid)
    pong = kernel.fork(ping.pid)  # fork after pipe: fds are inherited
    token = b"t"
    for _ in range(iterations):
        # ping writes, switch to pong, pong reads and writes back, switch.
        clock.advance(2 * platform.syscall_cost_ns())
        kernel.write(ping.pid, w1, token)
        kernel.context_switch()
        clock.advance(2 * platform.syscall_cost_ns())
        kernel.read(pong.pid, r1, 1)
        kernel.context_switch()
    return BenchScore("context_switch", iterations / clock.now_s)


def process_creation_bench(
    platform: Platform, iterations: int = 100
) -> BenchScore:
    """Process Creation: fork + exit + wait."""
    clock = SimClock()
    kernel = platform.make_kernel(clock)
    kernel.mmu.clock = clock
    parent = kernel.spawn("forker")
    for _ in range(iterations):
        clock.advance(platform.syscall_cost_ns())  # fork
        child = kernel.fork(parent.pid)
        kernel.exit(child.pid, 0)
        clock.advance(platform.syscall_cost_ns())  # wait4
        kernel.waitpid(parent.pid, child.pid)
    return BenchScore("process_creation", iterations / clock.now_s)
