"""Workload models: request profiles, client generators, benchmarks."""

from repro.workloads.base import (
    RequestProfile,
    ServerModel,
    ServerResult,
)
from repro.workloads.clients import (
    ApacheBench,
    BenchReport,
    ClosedLoopClient,
    MemtierBenchmark,
    WrkClient,
)
from repro.workloads.profiles import (
    ALL_PROFILES,
    MEMCACHED,
    MYSQL_QUERY,
    NGINX,
    NGINX_PHP_FPM,
    PHP_SERVER,
    REDIS,
)
from repro.workloads.apps import (
    APP_BY_NAME,
    TABLE1_APPS,
    AppSpec,
    build_trace_binary,
    measure_reduction,
)
from repro.workloads import unixbench
from repro.workloads.iperf import IperfResult, iperf_bench
from repro.workloads.http import HttpClient, StaticHttpServer
from repro.workloads.php_mysql_app import (
    MySqlServer,
    PhpApp,
    build_dedicated_deployment,
    build_merged_deployment,
)

__all__ = [
    "RequestProfile",
    "ServerModel",
    "ServerResult",
    "ApacheBench",
    "BenchReport",
    "ClosedLoopClient",
    "MemtierBenchmark",
    "WrkClient",
    "ALL_PROFILES",
    "NGINX",
    "MEMCACHED",
    "REDIS",
    "PHP_SERVER",
    "MYSQL_QUERY",
    "NGINX_PHP_FPM",
    "TABLE1_APPS",
    "APP_BY_NAME",
    "AppSpec",
    "build_trace_binary",
    "measure_reduction",
    "unixbench",
    "iperf_bench",
    "IperfResult",
    "HttpClient",
    "StaticHttpServer",
    "MySqlServer",
    "PhpApp",
    "build_dedicated_deployment",
    "build_merged_deployment",
]
