"""Client workload generators.

Models of the load generators the paper drives its servers with: ``wrk``
(Figs 6, 8, 9), Apache ``ab`` (Fig 3 NGINX), ``memtier_benchmark``
(Fig 3 memcached/Redis).  A generator owns the concurrency level and the
request mix, runs a :class:`~repro.workloads.base.ServerModel` closed-loop,
and reports the statistics the paper reports (mean ± std of five runs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf.rand import DeterministicRng
from repro.perf.stats import RunStats
from repro.workloads.base import RequestProfile, ServerModel, ServerResult

#: §5.1: "we report the average and standard deviation of five runs".
DEFAULT_RUNS = 5
#: Run-to-run noise observed on shared cloud instances.
RUN_NOISE = 0.015


import math


@dataclass
class BenchReport:
    platform: str
    workload: str
    throughput: RunStats
    latency_ms: RunStats

    @property
    def mean_throughput(self) -> float:
        return self.throughput.mean

    @property
    def mean_latency_ms(self) -> float:
        return self.latency_ms.mean

    def latency_pct_ms(self, pct: float) -> float:
        """Latency percentile under an exponential sojourn-time model.

        Closed-loop sojourn times in a saturated M/M/c-ish server are
        close to exponential, whose quantile is ``-mean * ln(1 - p)``
        (p50 ≈ 0.69×mean, p99 ≈ 4.6×mean) — the long-tail shape wrk
        reports.
        """
        if not 0.0 < pct < 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        return -self.mean_latency_ms * math.log(1.0 - pct / 100.0)

    @property
    def p50_latency_ms(self) -> float:
        return self.latency_pct_ms(50.0)

    @property
    def p99_latency_ms(self) -> float:
        return self.latency_pct_ms(99.0)


class ClosedLoopClient:
    """Base closed-loop generator: N connections, each always outstanding."""

    name = "client"
    concurrency = 32

    def __init__(self, seed: str = "client", runs: int = DEFAULT_RUNS) -> None:
        self.rng = DeterministicRng(seed)
        self.runs = runs

    def drive(
        self, server: ServerModel, profile: RequestProfile
    ) -> BenchReport:
        server.rng = self.rng.fork(f"{profile.name}:{server.platform.name}")
        throughput = RunStats("rps")
        latency = RunStats("ms")
        for _ in range(self.runs):
            result: ServerResult = server.measure(
                profile, concurrency=self.concurrency, noise=RUN_NOISE
            )
            throughput.add(result.throughput_rps)
            latency.add(result.mean_latency_ms)
        return BenchReport(
            platform=result.platform,
            workload=profile.name,
            throughput=throughput,
            latency_ms=latency,
        )


class WrkClient(ClosedLoopClient):
    """wrk: multithreaded HTTP generator (Figs 6, 8, 9)."""

    name = "wrk"

    def __init__(self, threads: int = 4, connections_per_thread: int = 8,
                 seed: str = "wrk") -> None:
        super().__init__(seed)
        self.concurrency = threads * connections_per_thread


class ApacheBench(ClosedLoopClient):
    """ab: concurrent HTTP requests (Fig 3 NGINX)."""

    name = "ab"

    def __init__(self, concurrency: int = 50, seed: str = "ab") -> None:
        super().__init__(seed)
        self.concurrency = concurrency


class MemtierBenchmark(ClosedLoopClient):
    """memtier_benchmark with a 1:10 SET:GET ratio (Fig 3 memcached/Redis).

    SETs carry larger inbound payloads than GETs; the blended profile the
    generator actually drives reflects the ratio.
    """

    name = "memtier"
    SET_GET_RATIO = (1, 10)

    def __init__(self, clients: int = 50, seed: str = "memtier") -> None:
        super().__init__(seed)
        self.concurrency = clients

    def blend_profile(self, profile: RequestProfile) -> RequestProfile:
        sets, gets = self.SET_GET_RATIO
        total = sets + gets
        set_fraction = sets / total
        # SET requests carry the value inbound; GET responses carry it out.
        from dataclasses import replace

        return replace(
            profile,
            bytes_in=int(
                profile.bytes_in + set_fraction * profile.bytes_out
            ),
            bytes_out=int(profile.bytes_out * (1 - set_fraction)),
        )

    def drive(self, server, profile):
        return super().drive(server, self.blend_profile(profile))
