"""Functional HTTP layer: a static server and a wrk-like client.

Not a cost model — actual request parsing and file serving over the
functional socket fabric (:mod:`repro.guest.socket`), with bytes read out
of the serving kernel's RamFS.  Used by the end-to-end scenarios and the
full-stack example; the priced models in :mod:`repro.workloads.base`
remain the source of the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.guest.kernel import GuestKernel
from repro.guest.socket import (
    SocketError,
    SocketLayer,
    SocketState,
    VirtualNetwork,
)
from repro.guest.vfs import VfsError

HTTP_OK = 200
HTTP_NOT_FOUND = 404
HTTP_BAD_REQUEST = 400

_REASONS = {200: "OK", 404: "Not Found", 400: "Bad Request"}


class HttpError(ValueError):
    pass


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)


def parse_request(raw: bytes) -> HttpRequest:
    """Parse a request head (``METHOD /path HTTP/1.1`` + headers)."""
    try:
        text = raw.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin1 total
        raise HttpError("undecodable request") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(f"malformed request line {lines[0]!r}")
    method, path, _version = parts
    headers = {}
    for line in lines[1:]:
        if not line:
            break
        if ":" not in line:
            raise HttpError(f"malformed header {line!r}")
        key, value = line.split(":", 1)
        headers[key.strip().lower()] = value.strip()
    return HttpRequest(method.upper(), path, headers)


def build_response(status: int, body: bytes,
                   content_type: str = "text/html") -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Server: repro-nginx\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def parse_response(raw: bytes) -> tuple[int, bytes]:
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].split(b" ")
    if len(status_line) < 2:
        raise HttpError("malformed response")
    return int(status_line[1]), body


@dataclass
class ServerStats:
    requests: int = 0
    errors: int = 0
    bytes_served: int = 0


class StaticHttpServer:
    """Serves files from its kernel's RamFS — a functional NGINX."""

    def __init__(
        self,
        kernel: GuestKernel,
        network: VirtualNetwork,
        address: tuple[str, int] = ("10.0.0.1", 80),
        docroot: str = "/srv",
    ) -> None:
        self.kernel = kernel
        self.sockets = SocketLayer(kernel, network)
        self.docroot = docroot.rstrip("/")
        self.stats = ServerStats()
        self.worker = kernel.spawn("nginx-worker")
        self.listen_fd = self.sockets.socket(self.worker.pid)
        self.sockets.bind(self.worker.pid, self.listen_fd, address)
        self.sockets.listen(self.worker.pid, self.listen_fd)
        self._listen_sock = self.sockets.resolve(
            self.worker.pid, self.listen_fd
        )
        #: Accepted keep-alive connections still open.
        self._open: list[int] = []
        #: fd -> resolved endpoint (skips the fd-table walk per request).
        self._socks: dict[int, object] = {}
        #: Open-file cache (NGINX ``open_file_cache`` + ``sendfile``):
        #: request path -> (prebuilt response, body length).  Invalidated
        #: whenever the docroot changes.
        self._response_cache: dict[str, tuple[bytes, int]] = {}
        #: Memoized full respond results keyed on the raw request bytes —
        #: (response, close_after, errored, body length).  Sound because
        #: ``_respond`` is pure in the docroot state; invalidated with it.
        self._respond_cache: dict[bytes, tuple[bytes, bool, bool, int]] = {}

    def publish(self, path: str, body: bytes) -> None:
        self.kernel.vfs.create(f"{self.docroot}{path}", body)
        self._response_cache.clear()
        self._respond_cache.clear()

    def handle_one(self) -> bool:
        """Service the listener once: accept pending connections and
        serve every buffered request on the open (keep-alive) ones.

        Connections persist across requests (HTTP/1.1 default) until the
        client sends ``Connection: close``, the request errors, or the
        peer hangs up — dead peers are reaped here.  Returns False when
        there was nothing at all to do.
        """
        pid = self.worker.pid
        sockets = self.sockets
        network = sockets.network
        netstack = self.kernel.netstack
        progressed = False
        while self._listen_sock.backlog:
            conn = sockets.accept(pid, self.listen_fd)
            self._open.append(conn)
            self._socks[conn] = sockets.resolve(pid, conn)
            progressed = True
        for conn in list(self._open):
            sock = self._socks[conn]
            if not sock.rx:
                peer = sock.peer
                if peer is None or peer.state is SocketState.CLOSED:
                    self._open.remove(conn)
                    self._socks.pop(conn, None)
                    sockets.close(pid, conn)
                    progressed = True
                continue
            # In-kernel fast path (sendfile-style): the worker holds the
            # resolved endpoint, so data-plane calls skip the fd table.
            raw = network.recv(netstack, sock, 65536)
            cached = self._respond_cache.get(raw)
            if cached is not None:
                response, close_after, errs, served = cached
                self.stats.requests += 1
                self.stats.errors += errs
                self.stats.bytes_served += served
            else:
                errs0 = self.stats.errors
                served0 = self.stats.bytes_served
                response, close_after = self._respond(raw)
                self._respond_cache[raw] = (
                    response,
                    close_after,
                    self.stats.errors - errs0,
                    self.stats.bytes_served - served0,
                )
            try:
                network.send(netstack, sock, response)
            except SocketError:
                close_after = True  # client went away mid-response
            if close_after:
                self._open.remove(conn)
                self._socks.pop(conn, None)
                sockets.close(pid, conn)
            progressed = True
        return progressed

    def _respond(self, raw: bytes) -> tuple[bytes, bool]:
        """Build the response and whether to close the connection after.

        Error responses close (the NGINX default for malformed traffic);
        successful exchanges keep the connection alive unless the client
        asked for ``Connection: close``.
        """
        self.stats.requests += 1
        try:
            request = parse_request(raw)
        except HttpError:
            self.stats.errors += 1
            return build_response(HTTP_BAD_REQUEST, b"bad request"), True
        wants_close = request.headers.get("connection", "") == "close"
        if request.method != "GET":
            self.stats.errors += 1
            return build_response(HTTP_BAD_REQUEST, b"only GET here"), True
        cached = self._response_cache.get(request.path)
        if cached is not None:
            response, body_len = cached
            self.stats.bytes_served += body_len
            return response, wants_close
        full_path = f"{self.docroot}{request.path}"
        try:
            fd = self.kernel.open(self.worker.pid, full_path)
        except VfsError:
            self.stats.errors += 1
            return (
                build_response(HTTP_NOT_FOUND, b"no such page"),
                wants_close,
            )
        body = bytearray()
        while True:
            chunk = self.kernel.read(self.worker.pid, fd, 4096)
            if not chunk:
                break
            body += chunk
        self.kernel.close(self.worker.pid, fd)
        self.stats.bytes_served += len(body)
        response = build_response(HTTP_OK, bytes(body))
        self._response_cache[request.path] = (response, len(body))
        return response, wants_close


class HttpClient:
    """A wrk-flavoured synchronous client with keep-alive connections.

    One persistent connection per server address (HTTP/1.1 default),
    reconnecting transparently when the server closed it — so steady-state
    requests pay no handshake and the request/response pair costs O(1)
    substrate crossings.
    """

    def __init__(
        self,
        kernel: GuestKernel,
        network: VirtualNetwork,
        server_pump,
    ) -> None:
        self.kernel = kernel
        self.sockets = SocketLayer(kernel, network)
        self.proc = kernel.spawn("wrk")
        #: Callable that lets the server process its backlog (the
        #: simulation is single-threaded).
        self._pump = server_pump
        #: address -> pooled (connection fd, resolved endpoint).
        self._conns: dict[tuple[str, int], tuple[int, object]] = {}
        #: (address, path) -> prebuilt request bytes.
        self._requests: dict[tuple[tuple[str, int], str], bytes] = {}
        #: raw response bytes -> parsed (status, body); sound because
        #: parsing is pure and responses repeat under keep-alive.
        self._parsed: dict[bytes, tuple[int, bytes]] = {}

    def _connect(self, address: tuple[str, int]) -> tuple[int, object]:
        fd = self.sockets.socket(self.proc.pid)
        self.sockets.connect(self.proc.pid, fd, address)
        entry = (fd, self.sockets.resolve(self.proc.pid, fd))
        self._conns[address] = entry
        return entry

    def _drop(self, address: tuple[str, int], fd: int) -> None:
        self._conns.pop(address, None)
        try:
            self.sockets.close(self.proc.pid, fd)
        except SocketError:
            pass

    def get(self, address: tuple[str, int], path: str) -> tuple[int, bytes]:
        entry = self._conns.get(address)
        if entry is None:
            entry = self._connect(address)
        fd, sock = entry
        request = self._requests.get((address, path))
        if request is None:
            request = (
                f"GET {path} HTTP/1.1\r\nHost: {address[0]}\r\n\r\n"
            ).encode("latin-1")
            self._requests[(address, path)] = request
        network = self.sockets.network
        netstack = self.kernel.netstack
        try:
            network.send(netstack, sock, request)
        except SocketError:
            # The server closed the pooled connection; reconnect once.
            self._drop(address, fd)
            fd, sock = self._connect(address)
            network.send(netstack, sock, request)
        self._pump()
        raw = network.recv(netstack, sock, 1 << 20)
        peer = sock.peer
        if peer is None or peer.state is SocketState.CLOSED:
            self._drop(address, fd)
        parsed = self._parsed.get(raw)
        if parsed is None:
            parsed = parse_response(raw)
            self._parsed[raw] = parsed
        return parsed

    def close(self) -> None:
        """Close all pooled connections."""
        for address, (fd, _sock) in list(self._conns.items()):
            self._drop(address, fd)
