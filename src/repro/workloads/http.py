"""Functional HTTP layer: a static server and a wrk-like client.

Not a cost model — actual request parsing and file serving over the
functional socket fabric (:mod:`repro.guest.socket`), with bytes read out
of the serving kernel's RamFS.  Used by the end-to-end scenarios and the
full-stack example; the priced models in :mod:`repro.workloads.base`
remain the source of the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.guest.kernel import GuestKernel
from repro.guest.socket import SocketError, SocketLayer, VirtualNetwork
from repro.guest.vfs import VfsError

HTTP_OK = 200
HTTP_NOT_FOUND = 404
HTTP_BAD_REQUEST = 400

_REASONS = {200: "OK", 404: "Not Found", 400: "Bad Request"}


class HttpError(ValueError):
    pass


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)


def parse_request(raw: bytes) -> HttpRequest:
    """Parse a request head (``METHOD /path HTTP/1.1`` + headers)."""
    try:
        text = raw.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin1 total
        raise HttpError("undecodable request") from exc
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(f"malformed request line {lines[0]!r}")
    method, path, _version = parts
    headers = {}
    for line in lines[1:]:
        if not line:
            break
        if ":" not in line:
            raise HttpError(f"malformed header {line!r}")
        key, value = line.split(":", 1)
        headers[key.strip().lower()] = value.strip()
    return HttpRequest(method.upper(), path, headers)


def build_response(status: int, body: bytes,
                   content_type: str = "text/html") -> bytes:
    reason = _REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Server: repro-nginx\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def parse_response(raw: bytes) -> tuple[int, bytes]:
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.split(b"\r\n", 1)[0].split(b" ")
    if len(status_line) < 2:
        raise HttpError("malformed response")
    return int(status_line[1]), body


@dataclass
class ServerStats:
    requests: int = 0
    errors: int = 0
    bytes_served: int = 0


class StaticHttpServer:
    """Serves files from its kernel's RamFS — a functional NGINX."""

    def __init__(
        self,
        kernel: GuestKernel,
        network: VirtualNetwork,
        address: tuple[str, int] = ("10.0.0.1", 80),
        docroot: str = "/srv",
    ) -> None:
        self.kernel = kernel
        self.sockets = SocketLayer(kernel, network)
        self.docroot = docroot.rstrip("/")
        self.stats = ServerStats()
        self.worker = kernel.spawn("nginx-worker")
        self.listen_fd = self.sockets.socket(self.worker.pid)
        self.sockets.bind(self.worker.pid, self.listen_fd, address)
        self.sockets.listen(self.worker.pid, self.listen_fd)

    def publish(self, path: str, body: bytes) -> None:
        self.kernel.vfs.create(f"{self.docroot}{path}", body)

    def handle_one(self) -> bool:
        """Accept and serve one connection; False if none pending."""
        pid = self.worker.pid
        try:
            conn = self.sockets.accept(pid, self.listen_fd)
        except SocketError:
            return False
        raw = self.sockets.recv(pid, conn, 65536)
        response = self._respond(raw)
        self.sockets.send(pid, conn, response)
        self.sockets.close(pid, conn)
        return True

    def _respond(self, raw: bytes) -> bytes:
        self.stats.requests += 1
        try:
            request = parse_request(raw)
        except HttpError:
            self.stats.errors += 1
            return build_response(HTTP_BAD_REQUEST, b"bad request")
        if request.method != "GET":
            self.stats.errors += 1
            return build_response(HTTP_BAD_REQUEST, b"only GET here")
        full_path = f"{self.docroot}{request.path}"
        try:
            fd = self.kernel.open(self.worker.pid, full_path)
        except VfsError:
            self.stats.errors += 1
            return build_response(HTTP_NOT_FOUND, b"no such page")
        body = bytearray()
        while True:
            chunk = self.kernel.read(self.worker.pid, fd, 4096)
            if not chunk:
                break
            body += chunk
        self.kernel.close(self.worker.pid, fd)
        self.stats.bytes_served += len(body)
        return build_response(HTTP_OK, bytes(body))


class HttpClient:
    """A wrk-flavoured synchronous client (one connection per request)."""

    def __init__(
        self,
        kernel: GuestKernel,
        network: VirtualNetwork,
        server_pump,
    ) -> None:
        self.kernel = kernel
        self.sockets = SocketLayer(kernel, network)
        self.proc = kernel.spawn("wrk")
        #: Callable that lets the server process its backlog (the
        #: simulation is single-threaded).
        self._pump = server_pump

    def get(self, address: tuple[str, int], path: str) -> tuple[int, bytes]:
        fd = self.sockets.socket(self.proc.pid)
        self.sockets.connect(self.proc.pid, fd, address)
        request = (
            f"GET {path} HTTP/1.1\r\nHost: {address[0]}\r\n\r\n"
        ).encode("latin-1")
        self.sockets.send(self.proc.pid, fd, request)
        self._pump()
        raw = self.sockets.recv(self.proc.pid, fd, 1 << 20)
        self.sockets.close(self.proc.pid, fd)
        return parse_response(raw)
