"""iperf — TCP bulk-transfer throughput (Fig 5).

The sender streams a large buffer; throughput is limited by either the
10 Gbit/s line rate or the CPU cost of pushing segments through the
platform's stack and device.  In the paper, iperf is roughly flat across
Docker / Xen-Container / X-Container (line-rate bound) and lower on gVisor
(its netstack is CPU-bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.instances import CloudSite, LOCAL_CLUSTER
from repro.platforms.base import Platform

LINE_RATE_GBITS = 10.0


@dataclass
class IperfResult:
    platform: str
    gbits_per_s: float
    cpu_bound: bool


def iperf_bench(
    platform: Platform,
    site: CloudSite = LOCAL_CLUSTER,
    transfer_mb: int = 256,
) -> IperfResult:
    """Simulate one iperf run of ``transfer_mb`` megabytes."""
    if transfer_mb <= 0:
        raise ValueError(f"transfer_mb must be positive: {transfer_mb}")
    nbytes = transfer_mb * 1024 * 1024
    netstack = platform.make_netstack(platform.make_kernel())
    cpu_ns = (
        netstack.bulk_transfer_cost_ns(nbytes)
        * site.io_scale
        * site.cost_scale
    )
    # A sender also issues write() syscalls, one per 128 KB chunk.
    chunks = nbytes / (128 * 1024)
    cpu_ns += chunks * platform.syscall_cost_ns()
    cpu_gbits = (nbytes * 8) / cpu_ns  # bits per ns == Gbit/s
    achieved = min(cpu_gbits, LINE_RATE_GBITS)
    return IperfResult(
        platform=platform.name + ("" if platform.patched else "-unpatched"),
        gbits_per_s=achieved,
        cpu_bound=cpu_gbits < LINE_RATE_GBITS,
    )
