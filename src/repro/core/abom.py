"""ABOM — the Automatic Binary Optimization Module (§4.4).

ABOM lives in the X-Kernel.  Every time a ``syscall`` instruction traps, and
*before* forwarding the request to the X-LibOS, ABOM inspects the bytes
around the trapping instruction.  If they match a recognized pattern it
rewrites them, in place, into a ``callq *slot`` through the vsyscall entry
table, so every later execution of the site bypasses the kernel entirely.

Recognized patterns (Figure 2):

===========  ============================================  ==================
pattern      original bytes                                replacement
===========  ============================================  ==================
Case 1       ``b8 imm32`` + ``0f 05``        (5+2 bytes)   one 7-byte call
Case 2 (Go)  ``48 8b 44 24 d8`` + ``0f 05``  (5+2 bytes)   one 7-byte call
                                                           (dynamic slot)
9-byte       ``48 c7 c0 imm32`` + ``0f 05``  (7+2 bytes)   phase 1: call
                                                           over the mov;
                                                           phase 2: ``eb f7``
                                                           over the syscall
===========  ============================================  ==================

Mechanical constraints reproduced from the paper:

* text pages are read-only, so the patcher clears the write-protect bit
  (CR0.WP) around the store and restores it after — leaving the page DIRTY;
* all stores go through ≤8-byte compare-exchange; the two stores of the
  9-byte patch each leave the binary in a semantically equivalent state
  (phase 1: ``call; syscall`` double-dispatch is prevented by the LibOS
  return-address check; phase 2: the trailing ``jmp -9`` re-enters the
  call for code that jumps to the old syscall address);
* a jump into the last two bytes of a 7-byte patch executes ``0x60 0xff``
  and #UDs; the X-Kernel's fixup handler rewinds RIP to the call (handled
  in :mod:`repro.core.xkernel`, see :meth:`ABOM.looks_like_patched_tail`).

Interplay with the interpreter's decode cache: every patch store goes
through :meth:`PagedMemory.compare_exchange` → :meth:`PagedMemory.write`,
which bumps the page's generation counter and fires the write observers
each vCPU registered.  Any cached basic block decoded from the patched
page — including a block a racing vCPU is executing *right now* — is
dropped before its next instruction, so the very next execution of the
site decodes the rewritten bytes.  This is the software analogue of the
hardware i-cache coherence the paper's ≤8-byte ``cmpxchg`` argument
quietly relies on (§4.4); ``docs/interpreter_performance.md`` spells out
the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cpu import CPU
from repro.arch.encoding import enc_call_abs_ind, enc_jmp_rel8
from repro.arch.memory import PagedMemory
from repro.core import vsyscall
from repro.faults import sites as fault_sites
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel

_SYSCALL = b"\x0f\x05"
#: ``jmp -9``: from the end of the syscall back to the start of the call.
_JMP_BACK = enc_jmp_rel8(-9)
_CALL_PREFIX = b"\xff\x14\x25"


@dataclass
class AbomStats:
    """Counters exposed for Table 1 ("we added a counter in the X-Kernel")."""

    syscalls_forwarded: int = 0
    patches_7byte: int = 0
    patches_9byte: int = 0
    patches_go: int = 0
    patch_failures: int = 0
    unrecognized_sites: int = 0
    ud_fixups: int = 0
    #: Injected cmpxchg losses to a (phantom) racing vCPU.
    cmpxchg_contentions: int = 0
    #: Site addresses already patched (patching is once per site).
    patched_sites: set[int] = field(default_factory=set)

    @property
    def total_patches(self) -> int:
        return self.patches_7byte + self.patches_9byte + self.patches_go


class ABOM:
    """The online binary patcher."""

    def __init__(
        self,
        memory: PagedMemory,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        enabled: bool = True,
        faults=None,
    ) -> None:
        self.memory = memory
        self.costs = costs or CostModel()
        self.clock = clock
        self.enabled = enabled
        #: Optional :class:`repro.faults.plan.FaultEngine`: ``contend``
        #: faults at :data:`repro.faults.sites.ABOM_CMPXCHG` make the CAS
        #: lose, exercising §4.4's retry arguments.
        self.faults = faults
        self.stats = AbomStats()
        #: Optional :class:`repro.perf.trace.Tracer` receiving patch events.
        self.tracer = None
        #: True while a patch is in flight — models "temporarily disables
        #: interrupts"; tests assert it is never observable from outside.
        self.irqs_disabled = False
        #: Sites whose patch previously lost a cmpxchg race; used to
        #: report recovery when the re-trap finally patches them.
        self._contended_sites: set[int] = set()
        self._contended = False

    # ------------------------------------------------------------------
    # Pattern matching & patching
    # ------------------------------------------------------------------
    def try_patch(self, syscall_addr: int) -> bool:
        """Attempt to patch the site whose ``syscall`` is at ``syscall_addr``.

        Called by the X-Kernel on every forwarded syscall, before the
        forward itself (the current invocation still goes the slow way; the
        paper patches "before forwarding the syscall request" but the
        request in hand is completed normally either way).
        Returns True if the site is now patched.
        """
        if not self.enabled:
            return False
        if syscall_addr in self.stats.patched_sites:
            return True
        self._contended = False
        matched = (
            self._try_patch_9byte(syscall_addr)
            or self._try_patch_mov_eax(syscall_addr)
            or self._try_patch_go(syscall_addr)
        )
        if matched:
            self.stats.patched_sites.add(syscall_addr)
            self._charge(self.costs.abom_patch_ns)
            if self.tracer is not None:
                self.tracer.emit("abom", "patch", site=syscall_addr)
            if self.faults is not None and (
                self._contended or syscall_addr in self._contended_sites
            ):
                # Either an earlier trap's patch lost the race (and this
                # re-trap finished it), or a 9-byte phase-2 loss left the
                # still-correct phase-1 state (§4.4's race argument).
                self._contended_sites.discard(syscall_addr)
                self.faults.record_recovered(
                    fault_sites.ABOM_CMPXCHG, addr=syscall_addr
                )
        elif self._contended:
            # The CAS lost to a racing vCPU — not an unrecognized site;
            # the next trap on this site retries the patch.
            self._contended_sites.add(syscall_addr)
        else:
            self.stats.unrecognized_sites += 1
            if self.tracer is not None:
                self.tracer.emit("abom", "unrecognized", site=syscall_addr)
        return matched

    def _read_back(self, addr: int, count: int) -> bytes | None:
        """Read ``count`` bytes ending at ``addr`` if all are mapped."""
        start = addr - count
        for probe in (start, addr - 1):
            if probe < 0 or not self.memory.is_mapped(probe):
                return None
        return self.memory.read(start, count)

    def _try_patch_mov_eax(self, syscall_addr: int) -> bool:
        """Fig 2 Case 1: ``b8 imm32; 0f 05`` → 7-byte call."""
        window = self._read_back(syscall_addr, 5)
        if window is None or window[0] != 0xB8:
            return False
        nr = int.from_bytes(window[1:5], "little")
        if nr >= vsyscall.NUM_SYSCALLS:
            return False
        old = window + _SYSCALL
        new = enc_call_abs_ind(vsyscall.slot_addr(nr))
        if self._cmpxchg(syscall_addr - 5, old, new):
            self.stats.patches_7byte += 1
            return True
        self.stats.patch_failures += 1
        return False

    def _try_patch_go(self, syscall_addr: int) -> bool:
        """Fig 2 Case 2: ``48 8b 44 24 disp8; 0f 05`` → 7-byte call.

        The syscall number is only known at run time (loaded from the
        stack), so the call goes through the dynamic slot table; its stub
        re-reads the number from ``disp+8(%rsp)``.
        """
        window = self._read_back(syscall_addr, 5)
        if window is None or window[:4] != b"\x48\x8b\x44\x24":
            return False
        disp = window[4]
        if disp not in vsyscall.DYNAMIC_DISPS:
            return False
        old = window + _SYSCALL
        new = enc_call_abs_ind(vsyscall.dynamic_slot_addr(disp))
        if self._cmpxchg(syscall_addr - 5, old, new):
            self.stats.patches_go += 1
            return True
        self.stats.patch_failures += 1
        return False

    def _try_patch_9byte(self, syscall_addr: int) -> bool:
        """Fig 2 9-byte: ``48 c7 c0 imm32; 0f 05`` in two phases."""
        window = self._read_back(syscall_addr, 7)
        if window is None or window[:3] != b"\x48\xc7\xc0":
            return False
        nr = int.from_bytes(window[3:7], "little")
        if nr >= vsyscall.NUM_SYSCALLS:
            return False
        # Phase 1: overwrite the 7-byte mov with the call; the trailing
        # syscall stays — the binary is still valid because the LibOS entry
        # skips a syscall found at the return address.
        phase1_new = enc_call_abs_ind(vsyscall.slot_addr(nr))
        if not self._cmpxchg(syscall_addr - 7, bytes(window), phase1_new):
            self.stats.patch_failures += 1
            return False
        # Phase 2: overwrite the now-dead syscall with ``jmp -9`` so a
        # direct jump to the old syscall address re-enters the call.
        if not self._cmpxchg(syscall_addr, _SYSCALL, _JMP_BACK):
            # Another vCPU raced us between the phases; the phase-1 state
            # is still correct, so count the site as patched anyway.
            self.stats.patch_failures += 1
        self.stats.patches_9byte += 1
        return True

    def _cmpxchg(self, addr: int, expected: bytes, new: bytes) -> bool:
        """One ≤8-byte compare-exchange with CR0.WP dropped around it.

        The store also serves as the decode-cache invalidation point: it
        bumps the text page's generation and notifies every vCPU's write
        observer, evicting any basic block decoded from the old bytes.
        """
        if self.faults is not None:
            fault = self.faults.fire(fault_sites.ABOM_CMPXCHG, addr=addr)
            if fault is not None and fault.kind == "contend":
                # A racing vCPU's store won; our compare sees stale bytes
                # and fails without writing anything.
                self.stats.cmpxchg_contentions += 1
                self._contended = True
                self.faults.record_retry(
                    fault_sites.ABOM_CMPXCHG, addr=addr
                )
                return False
        self.irqs_disabled = True
        saved_wp = self.memory.wp_enabled
        self.memory.wp_enabled = False
        try:
            return self.memory.compare_exchange(addr, expected, new)
        finally:
            self.memory.wp_enabled = saved_wp
            self.irqs_disabled = False

    # ------------------------------------------------------------------
    # #UD fixup support (jump into a patched call's tail)
    # ------------------------------------------------------------------
    def looks_like_patched_tail(self, fault_rip: int) -> bool:
        """True if ``fault_rip`` points at the ``60 ff`` tail of our call.

        The 7-byte replacement puts ``0x60 0xff`` exactly where the original
        ``syscall`` was; code that jumps to the old syscall address lands
        there and #UDs.  The fixup applies when the 5 bytes before the
        fault look like the head of one of our calls (§4.4).
        """
        head = self._read_back(fault_rip, 5)
        if head is None or head[:3] != _CALL_PREFIX:
            return False
        if not self.memory.is_mapped(fault_rip + 1):
            return False
        tail = self.memory.read(fault_rip, 2)
        return tail == b"\x60\xff"

    def fixup_rip(self, cpu: CPU, fault_rip: int) -> None:
        """Rewind RIP to the start of the patched call (5 bytes back)."""
        if not self.looks_like_patched_tail(fault_rip):
            raise ValueError(
                f"#UD at {fault_rip:#x} is not a patched call tail"
            )
        cpu.regs.rip = fault_rip - 5
        self.stats.ud_fixups += 1
        self._charge(self.costs.ud_fixup_ns)

    def _charge(self, ns: float) -> None:
        if self.clock is not None:
            self.clock.advance(ns)
