"""Hybrid discrete-event execution core — fleets of X-Containers.

Running one X-Container means interpreting real x86-64 machine code, and
that is exactly what the fleet engine does — for *runnable* domains.  A
quiescent domain, however, sits in the guest idle loop behind a ``hlt``,
and stepping it instruction-by-instruction buys nothing: Fig-8-style
scalability sweeps pay O(domains × ticks) wall-clock for guests that do
no work.  This module is the refactor ROADMAP item 2 asks for:

* **hybrid mode** (default): a parked domain registers its next wake
  event (work posted to its mailbox ring, an event-channel notify, a
  ring kick, a toolstack timer) in a central event queue and is
  *fast-forwarded* on the simulated clock to the delivery tick; global
  virtual time jumps straight from one wake tick to the next;
* **stepped mode** (``hybrid=False``): the oracle.  Global time walks
  the tick grid one tick at a time and every domain — parked or not —
  is visited on every tick, exactly like the pre-engine loop.

Both modes deliver the same wake events, at the same virtual times, in
the same order (domains in spawn order within a tick, events in post
order within a domain), and run the woken guest through the same
interpreter (icache + tracecache) with the same instruction budget — so
simulated results and every exported metric are byte-identical; only
wall-clock differs.  ``tests/core/test_exec_engine.py`` pins the identity
with a Hypothesis property; ``docs/hybrid_engine.md`` documents the
invariants.

The wake-event protocol models a one-producer mailbox ring per domain:
``post_work`` publishes work units (the ring payload) and enqueues a
*kick*; the kick — not the payload — is what the ``SCHED_WAKE`` fault
site can drop or delay, so a dropped kick leaves the units stranded
until the bounded watchdog redelivery re-kicks the domain (the classic
lost-wakeup race, observable by the PR 7 protocol checker).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.arch.assembler import Assembler
from repro.arch.binary import Binary
from repro.arch.registers import Reg
from repro.core.xcontainer import XContainer
from repro.core.xlibos import CountingServices
from repro.faults import sites as fault_sites
from repro.perf.clock import SimClock
from repro.xen.scheduler import CreditScheduler

#: Stack-relative guest mailbox protocol ([rsp+disp8] is the only memory
#: addressing mode the worker needs): the engine writes the pending work
#: count at ``rsp+MAILBOX_DISP`` before waking the guest; the guest
#: publishes its lifetime completed-unit total at ``rsp+COMPLETED_DISP``
#: and re-parks in ``hlt`` when the mailbox reads zero.
MAILBOX_DISP = 0x40
COMPLETED_DISP = 0x48

#: Inner busy-loop iterations the worker burns per work unit.
DEFAULT_SPIN = 24

#: Watchdog redelivery distance (ticks) after a dropped wake kick.
REDELIVER_TICKS = 8

#: Redelivery attempts before a dropped wake is recorded fatal.
MAX_REDELIVERIES = 16

#: Mailbox-ring capacity mirrored into the protocol checker.
WAKE_RING_SIZE = 4096

#: x86 ``hlt`` — one byte; hardware resumes at the *next* instruction
#: when an interrupt (here: a wake event) arrives.
HLT_OPCODE = 0xF4


def build_worker(spin: int = DEFAULT_SPIN) -> Binary:
    """The guest idle-loop worker every fleet domain runs.

    Parks in ``hlt``; on wake it drains the mailbox (``units`` iterations
    of a ``spin``-cycle busy loop each), publishes its completed total,
    and parks again.  A spurious wake (empty mailbox) falls straight back
    into ``hlt``.
    """
    asm = Assembler()
    asm.entry()
    # Only legacy registers (rax..rdi) — the encoder has no REX.B path
    # for r8-r15, so rsi holds the lifetime completed-unit counter.
    asm.xor(Reg.RSI, Reg.RSI)
    asm.store_rsp64(MAILBOX_DISP, Reg.RSI)
    asm.store_rsp64(COMPLETED_DISP, Reg.RSI)
    asm.label("idle")
    asm.hlt()
    asm.load_rsp64(Reg.RBX, MAILBOX_DISP)     # rbx = pending work units
    asm.cmp(Reg.RBX, 0)
    asm.je("idle")                            # spurious wake -> re-park
    asm.label("work")
    asm.mov_imm32(Reg.RCX, spin)
    asm.label("spin")
    asm.dec(Reg.RCX)
    asm.jne("spin")
    asm.inc(Reg.RSI)
    asm.dec(Reg.RBX)
    asm.jne("work")
    asm.store_rsp64(MAILBOX_DISP, Reg.RBX)    # mailbox consumed (zero)
    asm.store_rsp64(COMPLETED_DISP, Reg.RSI)
    asm.jmp("idle")
    return asm.build("fleet-worker")


@dataclass
class EngineStats:
    """Engine counters.

    Everything here except :attr:`polls` is *engine-invariant*: hybrid
    and stepped runs produce identical values (the byte-identity
    contract), so all of it is safe to export through telemetry.
    ``polls`` counts host-side domain visits — the wall-clock cost the
    hybrid mode exists to eliminate — and is deliberately NOT exported.
    """

    #: Wake kicks that landed on a domain (dead targets excluded).
    wake_events: int = 0
    #: ``post_work`` calls (mailbox-ring publishes).
    posts: int = 0
    #: Work units published across all posts.
    units_posted: int = 0
    #: Kicks lost to an injected ``SCHED_WAKE`` drop.
    drops: int = 0
    #: Kicks deferred by an injected ``SCHED_WAKE`` delay.
    delays: int = 0
    #: Watchdog re-kicks scheduled after drops.
    redeliveries: int = 0
    #: Kicks that found an empty mailbox (coalesced by an earlier wake).
    spurious_wakes: int = 0
    #: Kicks addressed to an already-retired domain.
    dead_wakes: int = 0
    #: Dropped kicks abandoned after :data:`MAX_REDELIVERIES`.
    abandoned: int = 0
    #: Simulated idle nanoseconds skipped (domain-clock jump from park
    #: to wake) instead of being stepped through the interpreter.
    fastforward_ns: float = 0.0
    #: Guest instructions retired across all wake bursts.
    instructions: int = 0
    #: Wake bursts executed (one per landed, non-spurious kick).
    bursts: int = 0
    #: Host-side domain visits (stepped mode scans every domain every
    #: tick; hybrid only touches woken domains).  Not exported.
    polls: int = 0


class ExecDomain:
    """One fleet domain: a real :class:`XContainer` running the worker."""

    def __init__(self, domid: int, name: str, container: XContainer) -> None:
        self.domid = domid
        self.name = name
        self.container = container
        self.cpu = container.cpu
        self.clock = container.clock
        self.parked = False
        self.dead = False
        #: Work units published to the mailbox ring but not yet consumed.
        self.pending_units = 0
        #: Posts backing those units (protocol-checker slot accounting).
        self.pending_posts = 0
        self.mailbox_addr = 0
        self.result_addr = 0
        self.ring_name = ""

    @property
    def completed(self) -> int:
        """Lifetime work units the guest has published as done."""
        return self.container.memory.read_u64(self.result_addr)


class _RingWaker:
    """Adapter a split driver holds: ``on_ring_reap`` wakes one domain."""

    def __init__(self, engine: "ExecutionEngine", domid: int) -> None:
        self._engine = engine
        self._domid = domid

    def on_ring_reap(self, count: int) -> None:
        self._engine.on_ring_reap(self._domid, count)


class ExecutionEngine:
    """The hybrid discrete-event fleet executor.

    One engine owns N domains, a central wake-event queue, and the
    global virtual clock (tick-quantized, ``tick_ns`` grid).  The
    :data:`hybrid` toggle selects fast-forwarding vs the stepped oracle;
    nothing else differs between the two modes.
    """

    def __init__(
        self,
        hybrid: bool = True,
        tick_ns: float = 1e6,
        scheduler: CreditScheduler | None = None,
        clock: SimClock | None = None,
        faults=None,
        sanitizer=None,
        spin: int = DEFAULT_SPIN,
        burst_budget: int = 1_000_000,
    ) -> None:
        if tick_ns <= 0 or tick_ns != int(tick_ns):
            raise ValueError(f"tick_ns must be a positive integer: {tick_ns}")
        self.hybrid = hybrid
        self.tick_ns = float(tick_ns)
        self.scheduler = scheduler or CreditScheduler(physical_cpus=16)
        #: Global virtual time (always a tick multiple; exact in float).
        self.clock = clock if clock is not None else SimClock()
        #: Optional :class:`repro.faults.plan.FaultEngine` (SCHED_WAKE).
        self.faults = faults
        #: Optional :class:`repro.sanitize.suite.SanitizerSuite`.
        self.sanitizer = sanitizer
        self.burst_budget = burst_budget
        self.stats = EngineStats()
        self._now = 0.0
        self._worker = build_worker(spin)
        self._domains: dict[int, ExecDomain] = {}
        self._order: list[int] = []
        #: (due_ns, seq, domid, attempts, delayed) — wake kicks only;
        #: the payload (work units) lives in the domain's mailbox ring.
        self._heap: list[tuple[float, int, int, int, bool]] = []
        self._seq = 0
        self.n_parked = 0
        #: Event-channel port -> domid (``bind_port``).
        self._ports: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Fleet construction
    # ------------------------------------------------------------------
    @property
    def n_domains(self) -> int:
        return len(self._order)

    def spawn(self, name: str | None = None, weight: int = 256) -> ExecDomain:
        """Create a domain, boot it into the parked idle loop."""
        domid = len(self._order)
        name = name if name is not None else f"dom{domid}"
        container = XContainer(CountingServices(), name=name)
        container.load(self._worker)
        dom = ExecDomain(domid, name, container)
        # Boot burst: entry -> first hlt (a handful of instructions).
        result = container.run_loaded(self._worker.entry, max_instructions=64)
        self.stats.instructions += result.instructions
        dom.mailbox_addr = container.cpu.regs.rsp + MAILBOX_DISP
        dom.result_addr = container.cpu.regs.rsp + COMPLETED_DISP
        # A late-joining domain starts life at the current virtual time;
        # only post-spawn idle gaps count as fast-forwarded.
        dom.clock.advance_to(self._now)
        self.scheduler.add_vcpu(domid, weight)
        self._park(dom)
        if self.sanitizer is not None:
            dom.ring_name = self.sanitizer.ring_register(
                f"wake:{name}", WAKE_RING_SIZE, 8
            )
        self._domains[domid] = dom
        self._order.append(domid)
        return dom

    def domain(self, domid: int) -> ExecDomain:
        return self._domains[domid]

    def retire(self, domid: int) -> None:
        """Destroy a domain; queued kicks to it become dead wakes."""
        dom = self._domains[domid]
        if dom.dead:
            return
        if dom.parked:
            dom.parked = False
            self.n_parked -= 1
        dom.dead = True
        dom.pending_units = 0
        dom.pending_posts = 0
        self.scheduler.remove_domain(domid)
        if self.sanitizer is not None:
            self.sanitizer.ring_quiesce(dom.ring_name)

    # ------------------------------------------------------------------
    # Wake-event protocol
    # ------------------------------------------------------------------
    def _next_tick(self, at_ns: float) -> float:
        """First tick boundary strictly after ``max(at_ns, now)``."""
        at = max(at_ns, self._now)
        return (at // self.tick_ns + 1.0) * self.tick_ns

    def _enqueue(
        self, domid: int, due: float, attempts: int = 0, delayed: bool = False
    ) -> None:
        heapq.heappush(self._heap, (due, self._seq, domid, attempts, delayed))
        self._seq += 1

    def post_work(self, domid: int, units: int, at_ns: float) -> None:
        """Publish ``units`` to a domain's mailbox ring and kick it.

        The units land in the ring immediately (they survive a dropped
        kick); delivery of the *kick* is what wakes the guest, at the
        first tick boundary after ``at_ns``.
        """
        if units <= 0:
            raise ValueError(f"units must be positive: {units}")
        dom = self._domains[domid]
        if dom.dead:
            self.stats.dead_wakes += 1
            return
        dom.pending_units += units
        dom.pending_posts += 1
        self.stats.posts += 1
        self.stats.units_posted += units
        if self.sanitizer is not None:
            self.sanitizer.ring_publish(dom.ring_name, "engine")
        self._enqueue(domid, self._next_tick(at_ns))

    def post_kick(self, domid: int, at_ns: float | None = None) -> None:
        """Wake a domain without publishing work (pure notification)."""
        at = at_ns if at_ns is not None else self._now
        self._enqueue(domid, self._next_tick(at))

    # -- external wake sources (events / drivers / toolstack) ----------
    def bind_port(self, port: int, domid: int) -> None:
        """Route event-channel notifies on ``port`` to a domain."""
        self._ports[port] = domid

    def attach_events(self, table) -> None:
        """Become ``table``'s waker: sends wake bound parked domains."""
        table.waker = self

    def on_event(self, port: int) -> None:
        """A pending event channel wakes the domain bound to its port."""
        domid = self._ports.get(port)
        if domid is not None:
            self.post_kick(domid)

    def ring_waker(self, domid: int) -> _RingWaker:
        """Waker for a split driver: response reaps wake ``domid``."""
        return _RingWaker(self, domid)

    def on_ring_reap(self, domid: int, count: int) -> None:
        """A ring response reap wakes the frontend's domain."""
        if count > 0 and domid in self._domains:
            self.post_kick(domid)

    def on_timer(self, domid: int, t_ns: float) -> None:
        """A timer (e.g. toolstack boot completion) fires at ``t_ns``."""
        if domid in self._domains:
            self.post_kick(domid, t_ns)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_until(self, t_end_ns: float) -> None:
        """Advance global virtual time to ``t_end_ns`` (a tick multiple),
        delivering every wake event due on the way."""
        if t_end_ns < self._now:
            raise ValueError(
                f"cannot run backwards: {t_end_ns} < {self._now}"
            )
        ticks = (t_end_ns - self._now) / self.tick_ns
        if ticks != int(ticks):
            raise ValueError(
                f"t_end must sit on the {self.tick_ns:g} ns tick grid: "
                f"{t_end_ns}"
            )
        if self.hybrid:
            self._run_hybrid(t_end_ns)
        else:
            self._run_stepped(t_end_ns)

    def run_to_quiescence(self) -> None:
        """Drain the event queue (redeliveries included) completely."""
        while self._heap:
            horizon = self._heap[0][0]
            for entry in self._heap:
                if entry[0] > horizon:
                    horizon = entry[0]
            self.run_until(horizon)

    def _run_stepped(self, t_end: float) -> None:
        """The oracle loop: every domain is visited on every tick."""
        t = self._now
        while t < t_end:
            t += self.tick_ns
            self._now = t
            self.clock.advance_to(t)
            batch = self._pop_due(t)
            for domid in self._order:
                # The oracle's per-tick visit: every domain, parked or
                # not, is looked at — the O(domains × ticks) wall cost
                # the hybrid mode exists to skip.
                dom = self._domains[domid]
                self.stats.polls += 1
                events = batch.get(domid)
                if events is not None:
                    for event in events:
                        self._deliver(dom, t, event)

    def _run_hybrid(self, t_end: float) -> None:
        """Fast-forward: jump straight between wake ticks."""
        while self._heap and self._heap[0][0] <= t_end:
            t = self._heap[0][0]
            if t > self._now:
                self._now = t
                self.clock.advance_to(t)
            batch = self._pop_due(t)
            for domid in self._order:
                if domid in batch:
                    dom = self._domains[domid]
                    self.stats.polls += 1
                    for event in batch[domid]:
                        self._deliver(dom, t, event)
        if t_end > self._now:
            self._now = t_end
            self.clock.advance_to(t_end)

    def _pop_due(
        self, t: float
    ) -> dict[int, list[tuple[float, int, int, int, bool]]]:
        """Pop every event due at or before ``t``, grouped per domain in
        pop (= post) order."""
        batch: dict[int, list[tuple[float, int, int, int, bool]]] = {}
        while self._heap and self._heap[0][0] <= t:
            event = heapq.heappop(self._heap)
            batch.setdefault(event[2], []).append(event)
        return batch

    def _deliver(
        self, dom: ExecDomain, t: float, event: tuple[float, int, int, int, bool]
    ) -> None:
        """One wake-kick delivery attempt — the SCHED_WAKE fault site."""
        _, _, domid, attempts, delayed = event
        if dom.dead:
            self.stats.dead_wakes += 1
            return
        if self.faults is not None:
            fault = self.faults.fire(fault_sites.SCHED_WAKE, domid=domid)
            if fault is not None:
                if fault.kind == "drop":
                    self.stats.drops += 1
                    if self.sanitizer is not None:
                        self.sanitizer.ring_kick_lost(dom.ring_name)
                    if attempts + 1 >= MAX_REDELIVERIES:
                        self.stats.abandoned += 1
                        self.faults.record_fatal(fault_sites.SCHED_WAKE)
                        return
                    # Bounded watchdog: re-kick a few ticks out.
                    self.faults.record_retry(fault_sites.SCHED_WAKE)
                    self.stats.redeliveries += 1
                    self._enqueue(
                        domid,
                        self._next_tick(t + REDELIVER_TICKS * self.tick_ns - 1),
                        attempts + 1,
                        delayed,
                    )
                    return
                if fault.kind == "delay":
                    self.stats.delays += 1
                    self._enqueue(
                        domid,
                        self._next_tick(t + max(0.0, fault.param)),
                        attempts,
                        True,
                    )
                    return
        if (attempts or delayed) and self.faults is not None:
            # A previously dropped or delayed kick finally landed.
            self.faults.record_recovered(fault_sites.SCHED_WAKE)
        self.stats.wake_events += 1
        units = dom.pending_units
        posts = dom.pending_posts
        dom.pending_units = 0
        dom.pending_posts = 0
        if self.sanitizer is not None:
            self.sanitizer.ring_kick(dom.ring_name, "engine")
        if units == 0:
            self.stats.spurious_wakes += 1
        dom.container.memory.write_u64(dom.mailbox_addr, units)
        self._wake(dom, t)
        retired = dom.cpu.run(self.burst_budget)
        self.stats.instructions += retired
        self.stats.bursts += 1
        if self.sanitizer is not None and posts:
            self.sanitizer.ring_reap(dom.ring_name, dom.name, posts)
        self._park(dom)

    def _wake(self, dom: ExecDomain, t: float) -> None:
        """Unpark: fast-forward the domain clock over the idle gap and
        resume the vCPU past its ``hlt``."""
        gap = t - dom.clock.now_ns
        if gap > 0:
            self.stats.fastforward_ns += gap
            dom.clock.advance_to(t)
        dom.container.xkernel.resume_from_halt(dom.cpu)
        if dom.parked:
            dom.parked = False
            self.n_parked -= 1
        self.scheduler.wake_domain(dom.domid)

    def _park(self, dom: ExecDomain) -> None:
        """The guest hit ``hlt``: all vCPUs blocked, domain parks."""
        if not dom.cpu.halted:
            raise RuntimeError(
                f"domain {dom.name} did not re-enter the idle loop"
            )
        if not dom.parked:
            dom.parked = True
            self.n_parked += 1
        dom.container.xkernel.note_parked(dom.cpu)
        self.scheduler.park_domain(dom.domid)

    # ------------------------------------------------------------------
    # Results & telemetry
    # ------------------------------------------------------------------
    @property
    def now_ns(self) -> float:
        return self._now

    def total_completed(self) -> int:
        total = 0
        for domid in self._order:
            dom = self._domains[domid]
            if not dom.dead:
                total += dom.completed
        return total

    def pending_total(self) -> int:
        total = 0
        for domid in self._order:
            total += self._domains[domid].pending_units
        return total

    def queued_wakes(self, domid: int | None = None) -> int:
        """Wake kicks currently queued (optionally for one domain).

        The wake-queue consistency invariant: a live domain with
        published-but-unconsumed mailbox units must have at least one
        kick (original, delayed, or watchdog redelivery) still queued,
        or its work is stranded — the lost-wakeup bug class the
        SCHED_WAKE site exists to exercise.
        """
        if domid is None:
            return len(self._heap)
        return sum(1 for event in self._heap if event[2] == domid)

    def snapshot(self) -> dict:
        """Deterministic, engine-invariant state summary.

        Byte-equal between hybrid and stepped runs of the same schedule
        — the identity oracle the Hypothesis property compares.
        """
        stats = self.stats
        return {
            "now_ns": self._now,
            "domains": [
                {
                    "domid": dom.domid,
                    "name": dom.name,
                    "dead": dom.dead,
                    "parked": dom.parked,
                    "completed": 0 if dom.dead else dom.completed,
                    "pending_units": dom.pending_units,
                    "instructions": dom.cpu.instructions_retired,
                    "clock_ns": dom.clock.now_ns,
                }
                for dom in (self._domains[d] for d in self._order)
            ],
            "stats": {
                "wake_events": stats.wake_events,
                "posts": stats.posts,
                "units_posted": stats.units_posted,
                "drops": stats.drops,
                "delays": stats.delays,
                "redeliveries": stats.redeliveries,
                "spurious_wakes": stats.spurious_wakes,
                "dead_wakes": stats.dead_wakes,
                "abandoned": stats.abandoned,
                "fastforward_ns": stats.fastforward_ns,
                "instructions": stats.instructions,
                "bursts": stats.bursts,
            },
        }

    def bind_telemetry(self, registry) -> None:
        """Expose the ``sched_*`` engine metrics (see docs/telemetry.md).

        Every exported value is engine-invariant; the host-only ``polls``
        counter stays off the registry by design.
        """
        from repro.obs import wire

        wire.wire_exec_engine(registry, self)
