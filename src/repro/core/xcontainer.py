"""The X-Container runtime object.

An :class:`XContainer` bundles one address space, one X-LibOS, a virtual
CPU, and the shared X-Kernel, and can load and run program binaries on the
interpreter.  It is the executable heart of the platform: the ABOM
evaluation (Table 1) and the syscall microbenchmarks (Fig 4) run real
machine code through it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.binary import Binary
from repro.arch.cpu import CPU
from repro.arch.memory import PagedMemory, PageFlags
from repro.core.xkernel import XKernel
from repro.core.xlibos import SyscallServices, XLibOS
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel

#: Default user stack placement (top of the lower half).
STACK_TOP = 0x7FFF_FFFF_F000
STACK_SIZE = 64 * 1024
#: Gap between per-vCPU stacks.
STACK_STRIDE = 2 * 1024 * 1024


@dataclass
class RunResult:
    """Outcome of executing a binary inside the container."""

    instructions: int
    elapsed_ns: float
    exit_rax: int


class XContainer:
    """One container: address space + X-LibOS + vCPU over the X-Kernel."""

    def __init__(
        self,
        services: SyscallServices,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        abom_enabled: bool = True,
        name: str = "xc0",
        vcpus: int = 1,
        memory_mb: int = 128,
        icache: bool = True,
        tracecache: bool = True,
        faults=None,
        telemetry: bool = True,
        sanitizers=None,
    ) -> None:
        self.name = name
        self.vcpus = vcpus
        self.memory_mb = memory_mb
        self.costs = costs or CostModel()
        self.clock = clock if clock is not None else SimClock()
        self.memory = PagedMemory()
        self.icache_enabled = icache
        self.tracecache_enabled = tracecache
        #: Optional :class:`repro.faults.plan.FaultEngine` (chaos runs).
        self.faults = faults
        self.xkernel = XKernel(
            self.memory,
            self.costs,
            self.clock,
            abom_enabled=abom_enabled,
            faults=faults,
        )
        self.libos = XLibOS(self.memory, services, self.costs, self.clock)
        self.cpu = CPU(
            self.memory,
            self.clock,
            instruction_ns=self.costs.instruction_ns,
            icache=icache,
            tracecache=tracecache,
        )
        self.cpus: list[CPU] = [self.cpu]
        self.xkernel.attach(self.cpu, self.libos)
        self._setup_stack(self.cpu, index=0)
        #: name -> split driver (SplitNetDriver / SplitBlockDriver) whose
        #: batch counters :meth:`io_stats` surfaces.
        self._io_drivers: dict[str, object] = {}
        #: Lazily-built :class:`repro.obs.Telemetry` (see :meth:`telemetry`).
        self._telemetry = None
        self._telemetry_enabled = telemetry
        #: Optional :class:`repro.sanitize.suite.SanitizerSuite`.
        self.sanitizers = None
        if sanitizers is not None:
            self.attach_sanitizers(sanitizers)

    def attach_sanitizers(self, suite) -> None:
        """Wire a :class:`repro.sanitize.suite.SanitizerSuite` into this
        container: memory write/LOCK observers plus per-vCPU exec hooks.
        The suite sees every vCPU under the ``<name>/vcpuN`` actor."""
        self.sanitizers = suite
        suite.attach_memory(self.memory)
        for index, cpu in enumerate(self.cpus):
            cpu.sanitizer = suite
            cpu.actor = f"{self.name}/vcpu{index}"

    def _setup_stack(self, cpu: CPU, index: int) -> None:
        top = STACK_TOP - index * STACK_STRIDE
        self.memory.map_region(
            top - STACK_SIZE,
            STACK_SIZE,
            PageFlags.USER | PageFlags.WRITABLE,
        )
        cpu.regs.rsp = top - 256

    # ------------------------------------------------------------------
    # Multicore processing (§4.3): extra vCPUs share the address space,
    # the LibOS entry stubs, and the X-Kernel trap handlers.
    # ------------------------------------------------------------------
    def add_vcpu(self) -> CPU:
        """Bring up another vCPU in this container."""
        cpu = CPU(
            self.memory,
            self.clock,
            instruction_ns=self.costs.instruction_ns,
            icache=self.icache_enabled,
            tracecache=self.tracecache_enabled,
        )
        if cpu._tracecache is not None and self.xkernel.tracer is not None:
            cpu._tracecache.tracer = self.xkernel.tracer
        self.xkernel.attach(cpu, self.libos)
        self._setup_stack(cpu, index=len(self.cpus))
        if self.sanitizers is not None:
            cpu.sanitizer = self.sanitizers
            cpu.actor = f"{self.name}/vcpu{len(self.cpus)}"
        self.cpus.append(cpu)
        if len(self.cpus) > self.vcpus:
            self.vcpus = len(self.cpus)
        if self._telemetry is not None:
            from repro.obs import wire

            wire.wire_cpu(
                self._telemetry.registry, cpu, index=len(self.cpus) - 1
            )
        return cpu

    def run_concurrent(
        self,
        programs: list[tuple[CPU, int]],
        quantum: int = 16,
        max_instructions: int = 50_000_000,
    ) -> int:
        """Interleave execution of ``(cpu, entry)`` pairs round-robin.

        Models multiple vCPUs of one container executing concurrently on
        shared text — the situation ABOM's atomic patching must survive
        (§4.4).  Returns total instructions retired.
        """
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1: {quantum}")
        for cpu, entry in programs:
            cpu.halted = False
            cpu.regs.rip = entry
        retired = 0
        live = [cpu for cpu, _ in programs]
        sanitizers = self.sanitizers
        while live and retired < max_instructions:
            for cpu in list(live):
                if sanitizers is not None:
                    # Memory-observer accesses during this quantum belong
                    # to this vCPU.
                    sanitizers.current_actor = cpu.actor
                for _ in range(quantum):
                    if cpu.halted:
                        break
                    cpu.step()
                    retired += 1
                if cpu.halted:
                    live.remove(cpu)
        if live:
            raise RuntimeError(
                f"instruction budget exhausted ({max_instructions})"
            )
        return retired

    # ------------------------------------------------------------------
    # Program execution
    # ------------------------------------------------------------------
    def load(self, binary: Binary) -> None:
        binary.load(self.memory)

    def run(self, binary: Binary, max_instructions: int = 50_000_000) -> RunResult:
        """Load and run ``binary`` to completion (hlt or exit)."""
        self.load(binary)
        return self.run_loaded(binary.entry, max_instructions)

    def run_loaded(
        self, entry: int, max_instructions: int = 50_000_000
    ) -> RunResult:
        """Run already-loaded code starting at ``entry``."""
        self.cpu.halted = False
        self.cpu.regs.rip = entry
        if self.sanitizers is not None:
            self.sanitizers.current_actor = self.cpu.actor
        start_ns = self.clock.now_ns
        retired = self.cpu.run(max_instructions)
        return RunResult(
            instructions=retired,
            elapsed_ns=self.clock.now_ns - start_ns,
            exit_rax=self.cpu.regs.rax,
        )

    def attach_tracer(self, tracer) -> None:
        """Route X-Kernel, ABOM, LibOS — and, when a fault engine is
        attached, fault-injection lifecycle events — into ``tracer``."""
        self.xkernel.tracer = tracer
        self.xkernel.abom.tracer = tracer
        self.libos.tracer = tracer
        for cpu in self.cpus:
            if cpu._tracecache is not None:
                cpu._tracecache.tracer = tracer
        if self.faults is not None:
            self.faults.tracer = tracer
        if self._telemetry is not None:
            self._telemetry.attach_tracer(tracer)

    def step(self, count: int = 1) -> int:
        """Execute up to ``count`` instructions; returns how many ran."""
        executed = 0
        if self.sanitizers is not None:
            self.sanitizers.current_actor = self.cpu.actor
        while executed < count and not self.cpu.halted:
            self.cpu.step()
            executed += 1
        return executed

    # ------------------------------------------------------------------
    # Checkpoint / restore (§3.3: "mature technologies in Xen's
    # ecosystem ... checkpoint/restore, which are hard to implement with
    # traditional containers")
    # ------------------------------------------------------------------
    def checkpoint(self, name: str = "ckpt"):
        """Snapshot this container's memory and vCPU state."""
        from repro.xen.migration import checkpoint_memory

        registers = self.cpu.regs.snapshot()
        registers["__zf"] = int(self.cpu.regs.zf)
        registers["__sf"] = int(self.cpu.regs.sf)
        registers["__cf"] = int(self.cpu.regs.cf)
        registers["__halted"] = int(self.cpu.halted)
        return checkpoint_memory(self.memory, registers, name)

    @classmethod
    def restore(
        cls,
        checkpoint,
        services: SyscallServices,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        abom_enabled: bool = True,
        name: str | None = None,
    ) -> "XContainer":
        """Materialize a container from a checkpoint and let it resume.

        The restored instance shares nothing with the original: fresh
        memory pages, fresh vCPU — only the checkpointed bytes carry over
        (including any ABOM patches already applied to the text).
        """
        from repro.arch.memory import PageFlags, _Page
        from repro.arch.registers import Reg as _Reg

        xc = cls(
            services,
            costs,
            clock,
            abom_enabled=abom_enabled,
            name=name or f"{checkpoint.name}-restored",
        )
        xc.memory._pages.clear()
        for index, data in checkpoint.pages.items():
            page = _Page(PageFlags(checkpoint.page_flags[index]))
            page.data = bytearray(data)
            xc.memory._pages[index] = page
        xc.memory.wp_enabled = checkpoint.wp_enabled
        regs = checkpoint.registers
        for reg in _Reg:
            xc.cpu.regs.write64(reg, regs[reg.name.lower()])
        xc.cpu.regs.rip = regs["rip"]
        xc.cpu.regs.zf = bool(regs.get("__zf", 0))
        xc.cpu.regs.sf = bool(regs.get("__sf", 0))
        xc.cpu.regs.cf = bool(regs.get("__cf", 0))
        xc.cpu.halted = bool(regs.get("__halted", 0))
        return xc

    def resume(self, max_instructions: int = 50_000_000) -> RunResult:
        """Continue execution from the current (restored) state."""
        if self.sanitizers is not None:
            self.sanitizers.current_actor = self.cpu.actor
        start_ns = self.clock.now_ns
        retired = self.cpu.run(max_instructions)
        return RunResult(
            instructions=retired,
            elapsed_ns=self.clock.now_ns - start_ns,
            exit_rax=self.cpu.regs.rax,
        )

    # ------------------------------------------------------------------
    # Introspection used by the experiments
    # ------------------------------------------------------------------
    @property
    def abom_stats(self):
        return self.xkernel.abom.stats

    @property
    def libos_stats(self):
        return self.libos.stats

    def telemetry(self):
        """This container's :class:`repro.obs.Telemetry` facade.

        One registry behind every counter: icache, X-Kernel traps and
        hypercalls, ABOM patch phases, LibOS syscall paths, attached
        split-driver rings, and (when a fault engine is attached) the
        fault-injection lifecycle.  Built lazily on first call — all
        bindings read the substrate structs at collection time, so
        enabling telemetry never changes simulated bytes or costs.
        """
        if not self._telemetry_enabled:
            raise RuntimeError(
                f"telemetry disabled for container {self.name!r} "
                f"(constructed with telemetry=False)"
            )
        if self._telemetry is None:
            from repro.obs import wire
            from repro.obs.facade import Telemetry

            tel = Telemetry(clock=self.clock, domain=self.name)
            registry = tel.registry
            for index, cpu in enumerate(self.cpus):
                wire.wire_cpu(registry, cpu, index=index)
            wire.wire_xkernel(registry, self.xkernel)
            wire.wire_abom(registry, self.xkernel.abom)
            wire.wire_libos(registry, self.libos)
            if self.faults is not None:
                wire.wire_faults(registry, self.faults)
            for name, driver in self._io_drivers.items():
                wire.wire_ring_driver(registry, name, driver)
            if self.xkernel.tracer is not None:
                tel.attach_tracer(self.xkernel.tracer)
            self._telemetry = tel
        return self._telemetry

    def icache_stats(self) -> dict[str, float]:
        """Deprecated: query :meth:`telemetry` (``arch_icache_*_total``).

        Shim kept for the legacy shape ``{hits, misses, invalidations,
        hit_rate}``; resolves through the registry when telemetry is
        enabled so the two surfaces cannot drift.
        """
        import warnings

        warnings.warn(
            "XContainer.icache_stats() is deprecated; use "
            "telemetry().value('arch_icache_hits_total') etc. instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not self._telemetry_enabled:
            return self.xkernel._icache_summary()
        from repro.obs import wire

        tel = self.telemetry()
        summary: dict[str, float] = {}
        for key, metric in wire.ICACHE_LEGACY.items():
            summary[key] = int(tel.value(metric))
        total = summary["hits"] + summary["misses"]
        summary["hit_rate"] = summary["hits"] / total if total else 0.0
        return summary

    def attach_io_driver(self, name: str, driver) -> None:
        """Register a split I/O driver so its ring counters surface in
        :meth:`telemetry` (``xen_ring_*`` metrics, ``driver`` label).

        ``driver`` is anything whose ``stats`` has an ``as_dict()`` —
        :class:`~repro.xen.drivers.SplitNetDriver` and
        :class:`~repro.xen.blkdev.SplitBlockDriver` both qualify.
        """
        if name in self._io_drivers:
            raise ValueError(f"I/O driver {name!r} already attached")
        self._io_drivers[name] = driver
        if self._telemetry is not None:
            from repro.obs import wire

            wire.wire_ring_driver(self._telemetry.registry, name, driver)

    def io_stats(self) -> dict[str, dict[str, float]]:
        """Deprecated: query :meth:`telemetry` (``xen_ring_*`` metrics).

        Shim kept for the legacy per-driver dict shape; resolves through
        the registry when telemetry is enabled.
        """
        import warnings

        warnings.warn(
            "XContainer.io_stats() is deprecated; use "
            "telemetry().value('xen_ring_batches_total', driver=...) etc. "
            "instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if not self._telemetry_enabled:
            return {
                name: driver.stats.as_dict()
                for name, driver in self._io_drivers.items()
            }
        from repro.obs import wire

        tel = self.telemetry()
        result: dict[str, dict[str, float]] = {}
        for name, driver in self._io_drivers.items():
            legacy = (
                wire.BLK_RING_LEGACY
                if hasattr(driver.stats, "reads")
                else wire.NET_RING_LEGACY
            )
            stats: dict[str, float] = {}
            for field_name, metric in legacy.items():
                value = tel.value(metric, driver=name)
                if field_name != "avg_batch_size":
                    value = int(value)
                stats[field_name] = value
            result[name] = stats
        return result

    def syscall_reduction(self) -> float:
        """Fraction of syscall invocations served without a kernel crossing.

        This is the Table 1 metric: with ABOM enabled, the counter in the
        X-Kernel sees only the unconverted invocations.
        """
        total = self.libos.stats.total_syscalls
        if total == 0:
            return 0.0
        return self.libos.stats.lightweight_syscalls / total
