"""Docker wrapper and bootloader (§4.5).

    "To bootstrap an X-Container, the Docker Wrapper loads an X-LibOS with
     a Docker image and a special bootloader.  The bootloader spawns the
     processes of the container directly without running any unnecessary
     services."

The wrapper models the spawn path and its costs: an X-LibOS boots in about
180 ms, but Xen's stock ``xl`` toolstack inflates total instantiation to
about 3 s; the LightVM-style toolstack cuts that to ~4 ms (both §4.5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.xcontainer import XContainer
from repro.core.xlibos import CountingServices, SyscallServices
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel


@dataclass
class DockerImage:
    """A container image: name, entrypoint, and process layout."""

    name: str
    entrypoint: str = "/bin/app"
    #: Processes the bootloader spawns (NGINX workers etc.).
    processes: int = 1
    env: dict[str, str] = field(default_factory=dict)


@dataclass
class SpawnTiming:
    """Breakdown of one container instantiation, in milliseconds."""

    toolstack_ms: float
    boot_ms: float
    bootloader_ms: float

    @property
    def total_ms(self) -> float:
        return self.toolstack_ms + self.boot_ms + self.bootloader_ms


class DockerWrapper:
    """Bootstraps Docker images as X-Containers."""

    def __init__(
        self,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        fast_toolstack: bool = False,
        registry=None,
    ) -> None:
        self.costs = costs or CostModel()
        self.clock = clock if clock is not None else SimClock()
        #: LightVM's streamlined toolstack "can be also applied to
        #: X-Containers" (§4.5) — off by default, matching the prototype.
        self.fast_toolstack = fast_toolstack
        #: Optional :class:`repro.core.images.ImageRegistry` for
        #: :meth:`spawn_image`.
        self.registry = registry
        self.spawned: list[tuple[DockerImage, SpawnTiming]] = []

    def spawn(
        self,
        image: DockerImage,
        services: SyscallServices | None = None,
        vcpus: int = 1,
        memory_mb: int = 128,
        abom_enabled: bool = True,
    ) -> tuple[XContainer, SpawnTiming]:
        """Create an X-Container from ``image`` and charge spawn time."""
        toolstack_ms = (
            self.costs.lightvm_toolstack_ms
            if self.fast_toolstack
            else self.costs.xl_toolstack_ms
        )
        # The special bootloader execs the container processes directly —
        # no init, no getty, no services; ~2 ms per extra process spawned.
        bootloader_ms = 2.0 * image.processes
        timing = SpawnTiming(
            toolstack_ms=toolstack_ms,
            boot_ms=self.costs.xlibos_boot_ms,
            bootloader_ms=bootloader_ms,
        )
        self.clock.advance(timing.total_ms * 1e6)
        container = XContainer(
            services if services is not None else CountingServices(),
            self.costs,
            self.clock,
            abom_enabled=abom_enabled,
            name=f"xc-{image.name}-{len(self.spawned)}",
            vcpus=vcpus,
            memory_mb=memory_mb,
        )
        self.spawned.append((image, timing))
        return container, timing

    def spawn_image(
        self,
        reference: str,
        vcpus: int = 1,
        memory_mb: int = 128,
        abom_enabled: bool = True,
    ):
        """Bootstrap an X-Container from a registry image.

        Pulls the manifest, materializes the layered rootfs into a fresh
        X-LibOS's filesystem (over a device-mapper snapshot, §5.1), and
        spawns the container with that kernel as its services backend.
        Returns ``(container, kernel, timing)``.
        """
        if self.registry is None:
            raise RuntimeError("DockerWrapper has no image registry")
        from repro.guest.config import KernelConfig
        from repro.guest.kernel import GuestKernel, HypercallMmu

        manifest = self.registry.pull(reference)
        kernel = GuestKernel(
            KernelConfig.xlibos(),
            self.costs,
            self.clock,
            mmu=HypercallMmu(self.costs, self.clock),
        )
        rootfs, _snapshot = self.registry.materialize(reference)
        kernel.vfs = rootfs
        image = DockerImage(manifest.name, manifest.entrypoint)
        container, timing = self.spawn(
            image,
            services=kernel,
            vcpus=vcpus,
            memory_mb=memory_mb,
            abom_enabled=abom_enabled,
        )
        # The bootloader spawns the entrypoint process directly (§4.5).
        kernel.spawn(manifest.entrypoint)
        return container, kernel, timing

    def ordinary_vm_spawn_ms(self) -> float:
        """What booting the same image as a full VM would cost (§4.5)."""
        return self.costs.xl_toolstack_ms + self.costs.vm_boot_ms
