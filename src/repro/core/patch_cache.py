"""Persisting ABOM patches across container instances (§4.4).

    "The patch is mostly transparent to X-LibOS, except that the page
     table dirty bit will be set for read-only pages.  X-LibOS can choose
     to either ignore those dirty pages, or flush them to disk so that
     the same patch is not needed in the future."

:class:`PatchCache` implements the flush-to-disk choice: after a
container has run, :meth:`capture` collects the dirtied text pages of its
binary; :meth:`apply` pre-patches the next instance's freshly-loaded text
so even the *first* execution of every converted site takes the
lightweight path (no warm-up traps, no re-patching cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.binary import Binary
from repro.arch.memory import PagedMemory, PageFlags, PAGE_SIZE


@dataclass
class CachedPatch:
    """The dirty text pages of one binary, keyed by page offset."""

    binary_name: str
    pages: dict[int, bytes] = field(default_factory=dict)

    @property
    def page_count(self) -> int:
        return len(self.pages)


class PatchCache:
    """Stores patched text pages per binary name."""

    def __init__(self) -> None:
        self._cache: dict[str, CachedPatch] = {}

    def __contains__(self, binary_name: str) -> bool:
        return binary_name in self._cache

    def entry(self, binary_name: str) -> CachedPatch:
        return self._cache[binary_name]

    def capture(self, binary: Binary, memory: PagedMemory) -> int:
        """Record ``binary``'s dirtied text pages; returns how many."""
        patch = CachedPatch(binary.name)
        end = binary.base + len(binary.code)
        for addr in memory.dirty_pages():
            if binary.base - PAGE_SIZE < addr < end:
                offset = addr - (binary.base & ~(PAGE_SIZE - 1))
                patch.pages[offset] = memory.read(addr, PAGE_SIZE)
        if patch.pages:
            self._cache[binary.name] = patch
        return patch.page_count

    def apply(self, binary: Binary, memory: PagedMemory) -> int:
        """Overlay cached patched pages onto a loaded ``binary``.

        Returns the number of pages applied (0 when nothing is cached).
        The pages are written supervisor-style (WP dropped) but the dirty
        bits are cleared afterwards — from the new instance's point of
        view the binary simply *is* the patched one.
        """
        patch = self._cache.get(binary.name)
        if patch is None:
            return 0
        page_base = binary.base & ~(PAGE_SIZE - 1)
        memory.wp_enabled = False
        try:
            for offset, data in patch.pages.items():
                memory.write(page_base + offset, data)
        finally:
            memory.wp_enabled = True
        for offset in patch.pages:
            addr = page_base + offset
            memory.set_page_flags(
                addr, memory.page_flags(addr) & ~PageFlags.DIRTY
            )
        return patch.page_count

    def clear(self, binary_name: str | None = None) -> None:
        if binary_name is None:
            self._cache.clear()
        else:
            self._cache.pop(binary_name, None)
