"""The vsyscall page and system-call entry table (§4.4).

    "X-LibOS stores a system call entry table in the vsyscall page, which is
     mapped to a fixed virtual memory address in every process."

The layout is inferred from Figure 2 of the paper:

* ``__read`` (syscall 0) calls through ``0xffffffffff600008`` and
  ``__restore_rt`` (syscall 15) through ``0xffffffffff600080`` — so the slot
  for syscall *n* lives at ``base + 8 * (n + 1)``;
* the Go ``syscall.Syscall`` site (number loaded from ``0x8(%rsp)``) calls
  through ``0xffffffffff600c08`` — a second, *dynamic* table at
  ``base + 0xc00`` indexed by the stack displacement, whose stubs load the
  syscall number from the stack at run time (shifted by 8 because the call
  pushed a return address).

The page sits at ``0xffffffffff600000`` precisely so every slot address fits
in a sign-extended 32-bit displacement, which is what makes the 7-byte
``callq *disp32`` replacement possible.
"""

from __future__ import annotations

from typing import Callable

from repro.arch.cpu import CPU
from repro.arch.memory import PagedMemory, PageFlags

VSYSCALL_BASE = 0xFFFFFFFFFF600000
#: Offset of the dynamic (stack-sourced number) slot table.
DYNAMIC_TABLE_OFFSET = 0xC00
#: Highest syscall number with a static slot.
NUM_SYSCALLS = 384
#: Stack displacements (multiples of 8) with a dynamic slot.
DYNAMIC_DISPS = tuple(range(0, 0x80, 8))
#: Where the LibOS entry stubs live (arbitrary kernel-half addresses; they
#: are native stubs, never fetched as bytes).
STUB_BASE = 0xFFFFFFFFFF610000
STUB_STRIDE = 16


def slot_addr(nr: int) -> int:
    """Table slot for a statically-known syscall number."""
    if not 0 <= nr < NUM_SYSCALLS:
        raise ValueError(f"syscall number out of table range: {nr}")
    return VSYSCALL_BASE + 8 * (nr + 1)


def dynamic_slot_addr(disp: int) -> int:
    """Table slot for a Go-style site loading the number from rsp+disp."""
    if disp not in DYNAMIC_DISPS:
        raise ValueError(f"no dynamic slot for displacement {disp:#x}")
    return VSYSCALL_BASE + DYNAMIC_TABLE_OFFSET + disp


def stub_addr(nr: int) -> int:
    return STUB_BASE + nr * STUB_STRIDE


def dynamic_stub_addr(disp: int) -> int:
    return STUB_BASE + (NUM_SYSCALLS + disp // 8) * STUB_STRIDE


class VsyscallPage:
    """Installs the entry table into memory and the stubs onto a CPU.

    ``entry_handler(cpu, nr)`` is the X-LibOS lightweight syscall entry: it
    is invoked with the resolved syscall number for static slots; dynamic
    stubs resolve the number from the stack first.
    """

    def __init__(self, memory: PagedMemory) -> None:
        self.memory = memory
        self._installed = False

    def install(self) -> None:
        """Map the page (kernel-half, GLOBAL, read-only) and fill the table."""
        self.memory.map_region(
            VSYSCALL_BASE,
            0x1000,
            PageFlags.USER | PageFlags.GLOBAL,
        )
        self.memory.wp_enabled = False
        try:
            for nr in range(NUM_SYSCALLS):
                self.memory.write_u64(slot_addr(nr), stub_addr(nr))
            for disp in DYNAMIC_DISPS:
                self.memory.write_u64(
                    dynamic_slot_addr(disp), dynamic_stub_addr(disp)
                )
        finally:
            self.memory.wp_enabled = True
        # Installing the table is initialization, not patching: clear the
        # dirty bit the supervisor writes set.
        self.memory.set_page_flags(
            VSYSCALL_BASE,
            self.memory.page_flags(VSYSCALL_BASE) & ~PageFlags.DIRTY,
        )
        self._installed = True

    def attach(
        self,
        cpu: CPU,
        entry_handler: Callable[[CPU, int], None],
    ) -> None:
        """Register the LibOS entry stubs on ``cpu``.

        Static stub *n* invokes ``entry_handler(cpu, n)``.  A dynamic stub
        for displacement ``d`` reads the number from ``(rsp + d + 8)`` —
        ``+8`` because the ``call`` has pushed the return address on top of
        what the original code indexed.
        """
        if not self._installed:
            raise RuntimeError("install() the vsyscall page before attach()")

        def make_static(nr: int):
            def stub(cpu: CPU) -> None:
                entry_handler(cpu, nr)

            return stub

        def make_dynamic(disp: int):
            def stub(cpu: CPU) -> None:
                nr = cpu.mem.read_u64(cpu.regs.rsp + disp + 8) & 0xFFFFFFFF
                entry_handler(cpu, nr)

            return stub

        for nr in range(NUM_SYSCALLS):
            cpu.native_stubs[stub_addr(nr)] = make_static(nr)
        for disp in DYNAMIC_DISPS:
            cpu.native_stubs[dynamic_stub_addr(disp)] = make_dynamic(disp)
