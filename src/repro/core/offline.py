"""Offline patching tool (§4.4, §5.2).

ABOM only handles sites where the ``syscall`` immediately follows the
``mov``.  For anything else — notably the *cancellable* syscalls in
libpthread, where a cancellation-flag check sits between the two (the MySQL
row of Table 1) — the paper provides an offline tool that injects code and
redirects a bigger chunk of the binary.

This implementation works on a loaded binary image the way a developer
would: it takes the site list (symbols) a human identified ("two locations
in the libpthread library can be patched"), and rewrites each whole
``mov; <checks>; syscall`` region into ``callq *slot`` plus a short jump
over the leftover bytes.  Unlike ABOM it is not restricted to two atomic
stores — the binary is patched at rest, not while running.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.binary import Binary, SitePattern, SyscallSite
from repro.arch.encoding import (
    decode,
    enc_call_abs_ind,
    enc_jmp_rel8,
    enc_jmp_rel32,
    enc_nop,
)
from repro.arch.memory import PagedMemory, PageFlags
from repro.core import vsyscall

#: Where injected trampolines live (one page, mapped on first use).
TRAMPOLINE_BASE = 0x00600000
TRAMPOLINE_SIZE = 0x1000


@dataclass
class OfflinePatchReport:
    patched: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    trampolines: list[str] = field(default_factory=list)


class OfflinePatcher:
    """Rewrites syscall sites ABOM cannot recognize.

    Two strategies, matching §4.4's description of the offline tool:

    * **in-place** — when the instructions between the ``mov`` and the
      ``syscall`` are dead weight for the LibOS case (the libpthread
      cancellation check: cancellation state lives in the LibOS anyway),
      the whole region is overwritten with a ``callq *slot`` plus a jump
      over the leftovers;
    * **trampoline** ("inject code into the binary and re-direct a bigger
      chunk of code") — when the intervening instructions must still
      execute, they are copied into an injected code page, followed by
      the ``callq *slot`` and a jump back; the site's first 5 bytes
      become a ``jmp`` to the trampoline.
    """

    def __init__(self, memory: PagedMemory) -> None:
        self.memory = memory
        self._trampoline_cursor = TRAMPOLINE_BASE
        self._trampoline_mapped = False

    def patch_discovered(
        self,
        binary: Binary,
        preserve_intervening: bool = False,
    ) -> OfflinePatchReport:
        """Patch every *statically discovered* cancellable site.

        The paper's tool ran from a human-supplied symbol list ("two
        locations in the libpthread library can be patched"); this
        variant recovers the sites from the bytes instead, via the CFG
        analyzer, so no symbols are needed.  Sites the safety verifier
        cannot certify (a CFG edge targeting the wrapper's interior) are
        skipped rather than patched.
        """
        # Imported lazily: repro.analysis itself depends on repro.core.
        from repro.analysis.cfg import recover_binary_cfg
        from repro.analysis.safety import Severity, verify_sites
        from repro.analysis.sites import discover_sites

        cfg = recover_binary_cfg(binary)
        discovered = discover_sites(cfg, binary.code, binary.base)
        findings = verify_sites(cfg, discovered)
        blocked = {
            f.site for f in findings
            if f.severity >= Severity.WARNING
            and f.kind == "offline-interior-target"
        }
        report = OfflinePatchReport()
        sites = []
        for found in discovered:
            if found.pattern is not SitePattern.CANCELLABLE:
                continue
            if found.syscall_addr in blocked:
                report.skipped.append(hex(found.syscall_addr))
                continue
            sites.append(found.to_syscall_site())
        partial = self.patch_sites(binary, sites, preserve_intervening)
        report.patched.extend(partial.patched)
        report.skipped.extend(partial.skipped)
        report.trampolines.extend(partial.trampolines)
        return report

    def patch_sites(
        self,
        binary: Binary,
        sites: list[SyscallSite],
        preserve_intervening: bool = False,
    ) -> OfflinePatchReport:
        """Patch each cancellable ``site`` of ``binary`` in memory."""
        report = OfflinePatchReport()
        for site in sites:
            label = site.symbol or hex(site.syscall_addr)
            if preserve_intervening:
                done = self._patch_with_trampoline(site)
                if done:
                    report.trampolines.append(label)
            else:
                done = self._patch_one(site)
            if done:
                report.patched.append(label)
            else:
                report.skipped.append(label)
        return report

    # ------------------------------------------------------------------
    # Trampoline injection
    # ------------------------------------------------------------------
    def _ensure_trampoline_page(self) -> None:
        if not self._trampoline_mapped:
            self.memory.map_region(
                TRAMPOLINE_BASE,
                TRAMPOLINE_SIZE,
                PageFlags.USER | PageFlags.EXECUTABLE | PageFlags.WRITABLE,
            )
            self._trampoline_mapped = True

    def _patch_with_trampoline(self, site: SyscallSite) -> bool:
        if site.pattern is not SitePattern.CANCELLABLE or site.nr is None:
            return False
        region_start = self._find_mov(site, max_back=64)
        if region_start is None:
            return False
        self._ensure_trampoline_page()
        # The instructions between the mov and the syscall, preserved.
        intervening = self.memory.read(
            region_start + 5, site.syscall_addr - (region_start + 5)
        )
        resume_addr = site.syscall_addr + 2
        tramp_addr = self._trampoline_cursor
        body = bytearray()
        body += intervening
        body += enc_call_abs_ind(vsyscall.slot_addr(site.nr))
        jmp_src = tramp_addr + len(body) + 5  # end of the jmp back
        body += enc_jmp_rel32(resume_addr - jmp_src)
        if tramp_addr + len(body) > TRAMPOLINE_BASE + TRAMPOLINE_SIZE:
            return False
        self.memory.write(tramp_addr, bytes(body))
        self._trampoline_cursor += len(body)
        # Redirect the site: jmp to the trampoline; pad what the jmp
        # skips with nops for the benefit of disassemblers.
        hook = enc_jmp_rel32(tramp_addr - (region_start + 5))
        region_len = resume_addr - region_start
        padding = enc_nop() * (region_len - len(hook))
        self.memory.wp_enabled = False
        try:
            self.memory.write(region_start, hook + padding)
        finally:
            self.memory.wp_enabled = True
        return True

    def _patch_one(self, site: SyscallSite) -> bool:
        if site.pattern is not SitePattern.CANCELLABLE or site.nr is None:
            return False
        # Locate the start of the wrapper: the ``mov $nr,%eax`` (5 bytes)
        # followed by the cancellation check, ending at the syscall.
        region_start = self._find_mov(site)
        if region_start is None:
            return False
        region_len = site.syscall_addr + 2 - region_start
        call = enc_call_abs_ind(vsyscall.slot_addr(site.nr))
        filler_len = region_len - len(call)
        if filler_len < 0:
            return False
        if filler_len == 0:
            patch = call
        elif filler_len == 1:
            patch = call + b"\x90"
        else:
            # Jump over whatever is left so stray bytes are never executed.
            patch = call + enc_jmp_rel8(filler_len - 2) + b"\x90" * (
                filler_len - 2
            )
        self.memory.wp_enabled = False
        try:
            self.memory.write(region_start, patch)
        finally:
            self.memory.wp_enabled = True
        return True

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _find_mov(self, site: SyscallSite, max_back: int = 16) -> int | None:
        """Scan back for the ``b8 <nr>`` that begins the wrapper."""
        want = bytes([0xB8]) + (site.nr & 0xFFFFFFFF).to_bytes(4, "little")
        for back in range(5, max_back + 1):
            start = site.syscall_addr - back
            if start < 0 or not self.memory.is_mapped(start):
                break
            if self.memory.read(start, 5) == want:
                # Confirm the bytes between mov and syscall decode cleanly
                # (we are rewriting whole instructions, not tails).
                if self._decodes_through(start + 5, site.syscall_addr):
                    return start
        return None

    def _decodes_through(self, start: int, end: int) -> bool:
        cursor = start
        while cursor < end:
            try:
                instr = decode(self.memory.read(cursor, min(15, end - cursor)))
            except Exception:
                return False
            cursor += instr.length
        return cursor == end
