"""Trusted computing base and attack-surface accounting (§3.4).

    "X-Containers, in contrast, rely on a small X-Kernel that is
     specifically dedicated to providing isolation.  The X-Kernel has a
     small TCB and a small number of hypervisor calls that lead to a
     smaller number of vulnerabilities in practice."

This module quantifies the claim for every platform: what code a tenant
must trust for *inter-container isolation*, and how many interfaces the
tenant can drive against that code.  Component sizes are public
order-of-magnitude figures for the paper's era (Linux 4.x, Xen 4.x,
gVisor 2018); what matters — and what the tests assert — are the ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xen.hypercalls import LINUX_SYSCALL_SURFACE, XEN_HYPERCALL_SURFACE

#: Order-of-magnitude component sizes (thousands of lines of code).
COMPONENT_KLOC = {
    "linux-kernel": 17000,
    "xen-core": 300,
    "x-kernel-delta": 15,  # the paper's modifications are small
    "gvisor-sentry": 200,
    "kvm": 60,
    "qemu-lite": 250,
    "graphene-libos": 35,
    "rumprun": 100,
}

#: Syscall subset gVisor's host filter still exposes to the Sentry.
GVISOR_HOST_SURFACE = 70
#: KVM's ioctl/VM-exit interface.
KVM_SURFACE = 50


@dataclass(frozen=True)
class IsolationProfile:
    """What a tenant must trust to stay isolated from its neighbours."""

    platform: str
    #: Components on the isolation boundary (inside the TCB).
    tcb_components: tuple[str, ...]
    #: Number of distinct interfaces a tenant can invoke against the TCB.
    attack_surface: int
    notes: str = ""

    @property
    def tcb_kloc(self) -> int:
        return sum(COMPONENT_KLOC[c] for c in self.tcb_components)


#: §3 / Figure 1: who stands between two mutually-untrusting containers.
PROFILES: dict[str, IsolationProfile] = {
    "docker": IsolationProfile(
        "docker",
        ("linux-kernel",),
        LINUX_SYSCALL_SURFACE,
        "containers share the full monolithic host kernel",
    ),
    "gvisor": IsolationProfile(
        "gvisor",
        ("gvisor-sentry", "linux-kernel"),
        GVISOR_HOST_SURFACE,
        "the Sentry fronts the tenant but itself runs on the host "
        "kernel behind a seccomp filter",
    ),
    "clear-container": IsolationProfile(
        "clear-container",
        ("kvm", "qemu-lite", "linux-kernel"),
        KVM_SURFACE,
        "VM isolation, but KVM and the device model live in the host "
        "kernel/userspace",
    ),
    "xen-container": IsolationProfile(
        "xen-container",
        ("xen-core",),
        XEN_HYPERCALL_SURFACE,
        "stock Xen isolates the guests; Domain-0 runs no applications "
        "(§4.1)",
    ),
    "x-container": IsolationProfile(
        "x-container",
        ("xen-core", "x-kernel-delta"),
        XEN_HYPERCALL_SURFACE,
        "the X-Kernel: Xen plus the paper's small modifications; the "
        "X-LibOS is NOT in the isolation TCB — compromising it only "
        "compromises its own container (§3.4)",
    ),
    "graphene": IsolationProfile(
        "graphene",
        ("graphene-libos", "linux-kernel"),
        LINUX_SYSCALL_SURFACE,
        "§6.2: 'the underlying host kernel of Graphene is a full-fledged "
        "Linux kernel, which does not reduce the TCB and attack surface'",
    ),
    "unikernel": IsolationProfile(
        "unikernel",
        ("xen-core",),
        XEN_HYPERCALL_SURFACE,
        "unikernels on Xen share X-Containers' isolation story, minus "
        "compatibility",
    ),
}


def profile(platform: str) -> IsolationProfile:
    prof = PROFILES.get(platform.lower())
    if prof is None:
        raise KeyError(
            f"no isolation profile for {platform!r}; known: "
            f"{', '.join(sorted(PROFILES))}"
        )
    return prof


@dataclass
class TcbComparison:
    platform: str
    tcb_kloc: int
    attack_surface: int
    tcb_vs_docker: float
    surface_vs_docker: float


def compare_to_docker() -> list[TcbComparison]:
    """The §3.4 table: everyone's isolation TCB relative to Docker's."""
    docker = PROFILES["docker"]
    rows = []
    for name, prof in sorted(PROFILES.items()):
        rows.append(
            TcbComparison(
                platform=name,
                tcb_kloc=prof.tcb_kloc,
                attack_surface=prof.attack_surface,
                tcb_vs_docker=prof.tcb_kloc / docker.tcb_kloc,
                surface_vs_docker=(
                    prof.attack_surface / docker.attack_surface
                ),
            )
        )
    return rows


def process_isolation_redundant(single_concerned: bool,
                                processes_mutually_trusting: bool) -> bool:
    """§2.2's design rule: intra-container process isolation is redundant
    exactly for single-concerned containers whose processes belong to the
    same service."""
    return single_concerned and processes_mutually_trusting
