"""X-Kernel — Xen modified into an exokernel for X-Containers (§4.2).

Differences from stock Xen PV, as implemented here:

* a trapped ``syscall`` is handed to ABOM for patching and then transferred
  *directly* to the X-LibOS in the same address space — no page-table
  switch, no TLB flush (stock x86-64 Xen PV pays both, twice per syscall);
* guest kernel mode vs. guest user mode is inferred from the stack
  pointer's most-significant bit, because lightweight syscalls no longer
  tell the hypervisor about mode switches (§4.2);
* a #UD raised by a jump into the tail of a patched call is fixed up by
  rewinding RIP (§4.4);
* the ``iret`` and event-delivery hypercalls are gone — the X-LibOS
  handles both in user mode.

The X-Kernel still owns everything that needs root privilege: page-table
updates arrive as validated hypercalls, which is why process creation and
context switching inside an X-Container are *slower* than native Docker
(§5.4) even though syscalls are far faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.cpu import CPU, Trap, TrapKind
from repro.arch.memory import PagedMemory
from repro.core.abom import ABOM
from repro.core.xlibos import XLibOS
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel

#: Addresses with the MSB set are in the kernel half of the address space.
_KERNEL_HALF = 1 << 63


#: x86 ``hlt``: one byte; an interrupt resumes at the next instruction.
_HLT_OPCODE = 0xF4


@dataclass
class XKernelStats:
    syscalls_trapped: int = 0
    hypercalls: dict[str, int] = field(default_factory=dict)
    pt_updates: int = 0
    ud_traps: int = 0
    #: vCPUs parked in the guest idle loop (``hlt``) / woken by an event.
    idle_parks: int = 0
    idle_wakes: int = 0


class XKernel:
    """The exokernel: trap handling, ABOM hosting, validated hypercalls."""

    def __init__(
        self,
        memory: PagedMemory,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
        abom_enabled: bool = True,
        meltdown_patched: bool = True,
        faults=None,
    ) -> None:
        self.memory = memory
        self.costs = costs or CostModel()
        self.clock = clock
        #: Optional :class:`repro.faults.plan.FaultEngine`, shared with ABOM.
        self.faults = faults
        self.abom = ABOM(
            memory, self.costs, clock, enabled=abom_enabled, faults=faults
        )
        self.stats = XKernelStats()
        #: vCPUs attached via :meth:`attach`, for decode-cache reporting.
        self.cpus: list[CPU] = []
        #: Optional :class:`repro.perf.trace.Tracer`.
        self.tracer = None
        #: The XPTI patch is ported to the X-Kernel (§5.1) but does not
        #: affect the syscall path — syscalls never cross into the
        #: hypervisor's protected mappings (§5.4: "the Meltdown patch does
        #: not affect performance of X-Containers").
        self.meltdown_patched = meltdown_patched

    # ------------------------------------------------------------------
    # CPU attachment
    # ------------------------------------------------------------------
    def attach(self, cpu: CPU, libos: XLibOS) -> None:
        """Install this kernel as ``cpu``'s trap handler, serving ``libos``."""

        def handler(cpu: CPU, trap: Trap) -> None:
            self.handle_trap(cpu, trap, libos)

        cpu.trap_handler = handler
        libos.attach(cpu)
        self.cpus.append(cpu)

    def icache_summary(self) -> dict[str, float]:
        """Deprecated: read ``arch_icache_*`` metrics from the telemetry
        registry instead (see ``docs/telemetry.md``).

        Thin shim over :meth:`_icache_summary`, kept for the legacy dict
        shape ``{hits, misses, invalidations, hit_rate}``.
        """
        import warnings

        warnings.warn(
            "XKernel.icache_summary() is deprecated; query the telemetry "
            "registry (arch_icache_*_total) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._icache_summary()

    def _icache_summary(self) -> dict[str, float]:
        """Aggregate decode-cache counters across all attached vCPUs.

        ABOM's patches are stores to live text: every one of them shows up
        here as invalidations on the vCPUs that had the patched page
        cached.  The perf layer reports these next to the Table 1 syscall
        counters.
        """
        summary = {"hits": 0, "misses": 0, "invalidations": 0}
        for cpu in self.cpus:
            stats = cpu.icache_stats
            summary["hits"] += stats.hits
            summary["misses"] += stats.misses
            summary["invalidations"] += stats.invalidations
        total = summary["hits"] + summary["misses"]
        summary["hit_rate"] = summary["hits"] / total if total else 0.0
        return summary

    # ------------------------------------------------------------------
    # Trap handling
    # ------------------------------------------------------------------
    def handle_trap(self, cpu: CPU, trap: Trap, libos: XLibOS) -> None:
        if trap.kind is TrapKind.SYSCALL:
            self._handle_syscall(cpu, trap, libos)
        elif trap.kind is TrapKind.INVALID_OPCODE:
            self._handle_ud(cpu, trap)
        else:
            raise trap

    def _handle_syscall(self, cpu: CPU, trap: Trap, libos: XLibOS) -> None:
        """Patch (if possible), then transfer to the LibOS (§4.4).

        "The X-Kernel immediately transfers control to the X-LibOS,
        guaranteeing binary level compatibility."
        """
        self.stats.syscalls_trapped += 1
        if self.tracer is not None:
            self.tracer.emit(
                "syscall", "forwarded", rip=trap.rip,
                nr=cpu.regs.rax & 0xFFFFFFFF,
            )
        self.abom.try_patch(trap.rip)
        self._charge(self.costs.xc_forwarded_syscall_ns)
        libos.forwarded_entry(cpu, trap.rip)

    def _handle_ud(self, cpu: CPU, trap: Trap) -> None:
        """Fix a jump into the last two bytes of a patched call (§4.4).

        With the decode cache enabled this path is reached exactly as on
        the bare interpreter: the patch store invalidated any cached block
        covering the site, so the jump into the ``60 ff`` tail misses the
        cache, re-decodes the freshly patched bytes, and #UDs here.  The
        rewound RIP then re-enters (or re-fills) the block that starts at
        the patched call.
        """
        self.stats.ud_traps += 1
        if self.abom.looks_like_patched_tail(trap.rip):
            self.abom.fixup_rip(cpu, trap.rip)
            return
        raise trap

    # ------------------------------------------------------------------
    # Idle park / wake (the discrete-event engine's protocol)
    # ------------------------------------------------------------------
    def note_parked(self, cpu: CPU) -> None:
        """Record a vCPU blocking in the guest idle loop (``hlt``).

        The fleet engine (:mod:`repro.core.engine`) calls this when a
        domain's last runnable vCPU halts; from here on the domain is
        eligible for fast-forwarding to its next wake event.
        """
        if not cpu.halted:
            raise ValueError("cannot park a running vCPU")
        self.stats.idle_parks += 1

    def resume_from_halt(self, cpu: CPU) -> bool:
        """Deliver a wake event to a vCPU parked in ``hlt``.

        Mirrors hardware: an interrupt arriving at a halted CPU resumes
        execution at the instruction *after* the ``hlt`` (RIP was left
        pointing at the ``hlt`` byte when the trap fired).  Returns
        False when the vCPU was not halted (the wake raced a burst).
        """
        if not cpu.halted:
            return False
        if self.memory.read(cpu.regs.rip, 1)[0] == _HLT_OPCODE:
            cpu.regs.rip += 1
        cpu.halted = False
        self.stats.idle_wakes += 1
        return True

    # ------------------------------------------------------------------
    # Mode discovery (§4.2)
    # ------------------------------------------------------------------
    @staticmethod
    def in_guest_kernel_mode(cpu: CPU) -> bool:
        """Guest kernel vs. user mode, judged by the stack pointer's MSB.

        "the X-Kernel determines whether the CPU is executing kernel or
        user process code by checking the location of the current stack
        pointer ... the most significant bit in the stack pointer indicates
        whether it is in guest kernel mode or guest user mode."
        """
        return bool(cpu.regs.rsp & _KERNEL_HALF)

    # ------------------------------------------------------------------
    # Hypercalls
    # ------------------------------------------------------------------
    def hypercall(self, name: str) -> None:
        """A validated hypercall (anything needing root privilege)."""
        self.stats.hypercalls[name] = self.stats.hypercalls.get(name, 0) + 1
        self._charge(self.costs.hypercall_ns)

    def mmu_update(self, entries: int = 1) -> None:
        """Batched page-table update — the cost process ops cannot avoid."""
        self.stats.pt_updates += entries
        self._charge(self.costs.pt_update_hypercall_ns * entries)

    def _charge(self, ns: float) -> None:
        if self.clock is not None:
            self.clock.advance(ns)
