"""Docker image storage: layers over device-mapper snapshots.

The Docker wrapper "loads an X-LibOS with a Docker image" (§4.5); this
module provides the image side: a registry of layered images, where each
container gets a copy-on-write snapshot of its image's flattened view —
the device-mapper backend of §5.1 — populated into the container's RamFS
at bootstrap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.guest.vfs import RamFS
from repro.xen.blkdev import BlockStore, SnapshotStore


@dataclass(frozen=True)
class Layer:
    """One image layer: a set of files (path -> content)."""

    digest: str
    files: tuple[tuple[str, bytes], ...]

    @staticmethod
    def from_dict(digest: str, files: dict[str, bytes]) -> "Layer":
        return Layer(digest, tuple(sorted(files.items())))

    @property
    def size_bytes(self) -> int:
        return sum(len(content) for _, content in self.files)


@dataclass
class ImageManifest:
    name: str
    tag: str
    layers: list[Layer] = field(default_factory=list)
    entrypoint: str = "/bin/app"

    @property
    def reference(self) -> str:
        return f"{self.name}:{self.tag}"

    def flatten(self) -> dict[str, bytes]:
        """Apply layers bottom-up; later layers override earlier ones."""
        view: dict[str, bytes] = {}
        for layer in self.layers:
            for path, content in layer.files:
                view[path] = content
        return view


class ImageRegistry:
    """Local image store with shared base layers."""

    def __init__(self, disk_sectors: int = 1 << 16) -> None:
        self._images: dict[str, ImageManifest] = {}
        self._layer_cache: dict[str, Layer] = {}
        #: The shared base device every container snapshot derives from.
        self.base_device = BlockStore(disk_sectors)

    def push(self, manifest: ImageManifest) -> None:
        for layer in manifest.layers:
            cached = self._layer_cache.get(layer.digest)
            if cached is not None and cached != layer:
                raise ValueError(
                    f"digest collision on {layer.digest}"
                )
            self._layer_cache[layer.digest] = layer
        self._images[manifest.reference] = manifest

    def pull(self, reference: str) -> ImageManifest:
        manifest = self._images.get(reference)
        if manifest is None:
            raise KeyError(f"image {reference!r} not found")
        return manifest

    def shared_layers(self, ref_a: str, ref_b: str) -> set[str]:
        """Layer digests two images have in common (dedup accounting)."""
        a = {layer.digest for layer in self.pull(ref_a).layers}
        b = {layer.digest for layer in self.pull(ref_b).layers}
        return a & b

    # ------------------------------------------------------------------
    # Container instantiation
    # ------------------------------------------------------------------
    def materialize(self, reference: str) -> tuple[RamFS, SnapshotStore]:
        """Create a container's root filesystem from an image.

        Returns the populated RamFS plus the copy-on-write block snapshot
        backing it (the §5.1 device-mapper configuration).
        """
        manifest = self.pull(reference)
        snapshot = SnapshotStore(self.base_device)
        rootfs = RamFS()
        for path, content in manifest.flatten().items():
            rootfs.create(path, content)
        return rootfs, snapshot


def demo_images() -> ImageRegistry:
    """A registry with the images the paper's experiments use."""
    registry = ImageRegistry()
    base_os = Layer.from_dict(
        "sha256:base-ubuntu16",
        {"/etc/os-release": b"Ubuntu 16.04", "/bin/sh": b"#!shell"},
    )
    registry.push(
        ImageManifest(
            "nginx", "1.13",
            [base_os,
             Layer.from_dict(
                 "sha256:nginx-bin",
                 {"/usr/sbin/nginx": b"NGINXBIN",
                  "/etc/nginx/nginx.conf": b"worker_processes 1;"},
             )],
            entrypoint="/usr/sbin/nginx",
        )
    )
    registry.push(
        ImageManifest(
            "memcached", "1.5.7",
            [base_os,
             Layer.from_dict(
                 "sha256:memcached-bin",
                 {"/usr/bin/memcached": b"MEMCACHEDBIN"},
             )],
            entrypoint="/usr/bin/memcached",
        )
    )
    registry.push(
        ImageManifest(
            "redis", "3.2.11",
            [base_os,
             Layer.from_dict(
                 "sha256:redis-bin",
                 {"/usr/bin/redis-server": b"REDISBIN"},
             )],
            entrypoint="/usr/bin/redis-server",
        )
    )
    return registry
