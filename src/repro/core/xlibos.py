"""X-LibOS — the guest Linux kernel turned library OS (§4.2–4.4).

The X-LibOS is mapped into the top half of every process's address space at
the same privilege level as user code.  System calls reach it two ways:

* **lightweight path** — patched binaries ``callq`` through the vsyscall
  entry table straight into a LibOS entry stub (:meth:`XLibOS.
  lightweight_entry`); no kernel crossing at all;
* **forwarded path** — unpatched ``syscall`` instructions trap into the
  X-Kernel, which immediately transfers control to
  :meth:`XLibOS.forwarded_entry` (same address space, no page-table switch).

The lightweight entry implements the 9-byte-patch contract from §4.4: if the
instruction at the return address is the original (now dead) ``syscall`` or
the ``jmp`` that phase 2 put in its place, the return address is advanced
past it.

Actual syscall *semantics* are delegated to a pluggable services backend —
the full guest kernel (:class:`repro.guest.kernel.GuestKernel`) in the real
platform, or :class:`CountingServices` in unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.arch.cpu import CPU
from repro.arch.memory import PagedMemory
from repro.core.vsyscall import VsyscallPage
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel

_SYSCALL = b"\x0f\x05"
_JMP_BACK = b"\xeb\xf7"


class SyscallServices(Protocol):
    """What the X-LibOS needs from its kernel-services backend."""

    def invoke(self, nr: int, cpu: CPU) -> int:
        """Execute syscall ``nr`` for the caller and return its result."""


@dataclass
class CountingServices:
    """Test/benchmark backend: counts invocations, returns canned results."""

    results: dict[int, int] = field(default_factory=dict)
    default_result: int = 0
    calls: list[int] = field(default_factory=list)

    def invoke(self, nr: int, cpu: CPU) -> int:
        self.calls.append(nr)
        return self.results.get(nr, self.default_result)

    def count(self, nr: int) -> int:
        return sum(1 for call in self.calls if call == nr)


@dataclass
class LibOsStats:
    lightweight_syscalls: int = 0
    forwarded_syscalls: int = 0
    return_address_skips: int = 0
    user_mode_irets: int = 0
    events_delivered: int = 0

    @property
    def total_syscalls(self) -> int:
        return self.lightweight_syscalls + self.forwarded_syscalls


class XLibOS:
    """The library OS half of the X-Containers platform."""

    def __init__(
        self,
        memory: PagedMemory,
        services: SyscallServices,
        costs: CostModel | None = None,
        clock: SimClock | None = None,
    ) -> None:
        self.memory = memory
        self.services = services
        self.costs = costs or CostModel()
        self.clock = clock
        self.stats = LibOsStats()
        self.vsyscall = VsyscallPage(memory)
        self.vsyscall.install()
        #: Optional :class:`repro.perf.trace.Tracer`.
        self.tracer = None

    def attach(self, cpu: CPU) -> None:
        """Register this LibOS's entry stubs on ``cpu``."""
        self.vsyscall.attach(cpu, self.lightweight_entry)

    # ------------------------------------------------------------------
    # Syscall entries
    # ------------------------------------------------------------------
    def lightweight_entry(self, cpu: CPU, nr: int) -> None:
        """Handle a function-call syscall arriving via the entry table.

        On entry the return address pushed by the patched ``call`` is on
        top of the stack.
        """
        self._charge(self.costs.xc_func_call_syscall_ns)
        if self.tracer is not None:
            self.tracer.emit("syscall", "lightweight", nr=nr)
        ret_addr = cpu.mem.read_u64(cpu.regs.rsp)
        result = self.services.invoke(nr, cpu)
        cpu.regs.rax = result
        ret_addr = self._maybe_skip_dead_instruction(ret_addr)
        cpu.regs.rsp += 8
        cpu.regs.rip = ret_addr
        self.stats.lightweight_syscalls += 1

    def forwarded_entry(self, cpu: CPU, syscall_addr: int) -> None:
        """Handle a trapped ``syscall`` handed over by the X-Kernel."""
        nr = cpu.regs.rax & 0xFFFFFFFF
        result = self.services.invoke(nr, cpu)
        cpu.regs.rax = result
        cpu.regs.rip = syscall_addr + 2
        self.stats.forwarded_syscalls += 1

    def _maybe_skip_dead_instruction(self, ret_addr: int) -> int:
        """§4.4: skip a trailing ``syscall`` or ``jmp -9`` after the call.

        Both shapes are left behind by the 9-byte patch: phase 1 leaves the
        original ``syscall``; phase 2 turns it into a ``jmp`` back to the
        call.  Either would re-issue the syscall if returned to.
        """
        if not (
            self.memory.is_mapped(ret_addr)
            and self.memory.is_mapped(ret_addr + 1)
        ):
            return ret_addr
        tail = self.memory.read(ret_addr, 2)
        if tail == _SYSCALL or tail == _JMP_BACK:
            self.stats.return_address_skips += 1
            return ret_addr + 2
        return ret_addr

    # ------------------------------------------------------------------
    # User-mode iret / event delivery (§4.2)
    # ------------------------------------------------------------------
    def user_mode_iret(self, cpu: CPU, frame: dict[str, int]) -> None:
        """Return from an interrupt handler without a hypercall.

        Implements the §4.2 technique: the saved context is staged on the
        kernel stack and resumed with an ordinary ``ret`` — here the frame
        is applied directly, but the cost charged is the user-mode variant
        (a handful of pushes plus a ret) rather than Xen's iret hypercall.
        """
        cpu.regs.rip = frame["rip"]
        cpu.regs.rsp = frame["rsp"]
        if "rax" in frame:
            cpu.regs.rax = frame["rax"]
        self.stats.user_mode_irets += 1
        # ~8 register pushes/pops and a ret instead of a hypercall.
        self._charge(10 * self.costs.instruction_ns)

    def deliver_pending_events(self, pending: list) -> int:
        """Emulate the interrupt stack frame and run handlers directly.

        In stock Xen PV the guest issues a hypercall to have pending events
        delivered; the X-LibOS jumps straight into its handlers (§4.2).
        Each ``pending`` item is a zero-argument callable.
        """
        for handler in pending:
            handler()
            self.stats.events_delivered += 1
        return len(pending)

    def _charge(self, ns: float) -> None:
        if self.clock is not None:
            self.clock.advance(ns)
