"""The paper's primary contribution: the X-Containers platform.

* :mod:`repro.core.vsyscall` — the vsyscall page holding the system-call
  entry table that patched binaries call through (§4.4);
* :mod:`repro.core.abom` — the Automatic Binary Optimization Module: the
  online ``syscall``→``call`` rewriter (§4.4, Fig 2);
* :mod:`repro.core.offline` — the offline patching tool for sites ABOM
  cannot recognize (the MySQL/libpthread case of Table 1);
* :mod:`repro.core.xkernel` — the X-Kernel: Xen modified to forward
  syscalls without address-space isolation, host ABOM, and fix #UD traps
  from jumps into patched call tails (§4.2);
* :mod:`repro.core.xlibos` — the X-LibOS: the guest Linux turned LibOS,
  with lightweight syscall dispatch and user-mode iret/sysret (§4.2–4.4);
* :mod:`repro.core.xcontainer` — the X-Container runtime object;
* :mod:`repro.core.docker_wrapper` — Docker-image bootstrap (§4.5).
"""

from repro.core.vsyscall import VsyscallPage, VSYSCALL_BASE
from repro.core.abom import ABOM, AbomStats
from repro.core.offline import OfflinePatcher
from repro.core.xkernel import XKernel
from repro.core.xlibos import XLibOS, CountingServices
from repro.core.xcontainer import XContainer
from repro.core.docker_wrapper import DockerWrapper, DockerImage
from repro.core.patch_cache import PatchCache
from repro.core.images import ImageManifest, ImageRegistry, Layer, demo_images
from repro.core import tcb

__all__ = [
    "VsyscallPage",
    "VSYSCALL_BASE",
    "ABOM",
    "AbomStats",
    "OfflinePatcher",
    "XKernel",
    "XLibOS",
    "CountingServices",
    "XContainer",
    "DockerWrapper",
    "DockerImage",
    "PatchCache",
    "ImageManifest",
    "ImageRegistry",
    "Layer",
    "demo_images",
    "tcb",
]
