"""Exporters: Prometheus exposition text, Chrome trace JSON, text table.

All three are deterministic — samples are sorted by ``(name, labels)``,
numbers render through one stable formatter, and JSON is emitted with
sorted keys and fixed separators — so a fixed-seed run produces
byte-identical output (the golden-file tests pin this).
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.registry import (
    Histogram,
    Registry,
    format_value,
    render_sample_key,
)
from repro.obs.tracing import SpanRecorder

# ---------------------------------------------------------------------------
# Prometheus exposition format
# ---------------------------------------------------------------------------


def _prom_labels(labels: Iterable[tuple[str, str]], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = tuple(labels) + tuple(extra)
    if not items:
        return ""
    inner = ",".join(
        f'{key}="{_escape(value)}"' for key, value in items
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n"
    )


def prometheus_text(registry: Registry) -> str:
    """Render every sample in the Prometheus text exposition format.

    Histograms expand to ``_bucket{le=...}`` series (cumulative), plus
    ``_sum`` and ``_count``; ``# HELP`` / ``# TYPE`` headers are emitted
    once per metric name, at its first (sorted) occurrence.
    """
    lines: list[str] = []
    seen_headers: set[str] = set()
    for sample in registry.collect():
        if sample.name not in seen_headers:
            seen_headers.add(sample.name)
            if sample.help:
                lines.append(f"# HELP {sample.name} {sample.help}")
            lines.append(f"# TYPE {sample.name} {sample.kind}")
        if isinstance(sample.value, Histogram):
            hist = sample.value
            for edge, cumulative in zip(hist.buckets, hist.cumulative()):
                lines.append(
                    f"{sample.name}_bucket"
                    f"{_prom_labels(sample.labels, (('le', format_value(edge)),))}"
                    f" {cumulative}"
                )
            lines.append(
                f"{sample.name}_bucket"
                f"{_prom_labels(sample.labels, (('le', '+Inf'),))}"
                f" {hist.count}"
            )
            lines.append(
                f"{sample.name}_sum{_prom_labels(sample.labels)} "
                f"{format_value(hist.sum)}"
            )
            lines.append(
                f"{sample.name}_count{_prom_labels(sample.labels)} "
                f"{hist.count}"
            )
        else:
            lines.append(
                f"{sample.name}{_prom_labels(sample.labels)} "
                f"{format_value(sample.value)}"
            )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Chrome trace event format (about://tracing, Perfetto)
# ---------------------------------------------------------------------------


def chrome_trace_json(spans: SpanRecorder, pretty: bool = False) -> str:
    """Finished spans as Chrome trace ``X`` (complete) events.

    Timestamps are microseconds (the format's unit); span/parent ids ride
    in ``args`` so Perfetto's flow queries can rebuild the hierarchy.
    """
    events = []
    for span in spans.finished:
        args: dict[str, object] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(dict(span.labels))
        events.append(
            {
                "name": span.name,
                "cat": "sim",
                "ph": "X",
                "ts": span.start_ns / 1e3,
                "dur": span.duration_ns / 1e3,
                "pid": 1,
                "tid": 1,
                "args": args,
            }
        )
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.obs", "dropped_spans": spans.dropped},
    }
    if pretty:
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ) + "\n"


# ---------------------------------------------------------------------------
# Deterministic text table
# ---------------------------------------------------------------------------


def render_table(registry: Registry) -> str:
    """Fixed-width table of every sample (``repro metrics`` default)."""
    rows: list[tuple[str, str, str]] = []
    for sample in registry.collect():
        key = render_sample_key(sample.name, sample.labels)
        if isinstance(sample.value, Histogram):
            hist = sample.value
            rows.append((key, "histogram", (
                f"count={hist.count} sum={format_value(hist.sum)} "
                f"mean={format_value(round(hist.mean, 3))}"
            )))
        else:
            rows.append((key, sample.kind, format_value(sample.value)))
    if not rows:
        return "(no metrics registered)\n"
    name_width = max(len(row[0]) for row in rows)
    kind_width = max(len(row[1]) for row in rows)
    lines = [
        f"{'metric':<{name_width}}  {'kind':<{kind_width}}  value",
        "-" * (name_width + kind_width + 9),
    ]
    for key, kind, value in rows:
        lines.append(f"{key:<{name_width}}  {kind:<{kind_width}}  {value}")
    return "\n".join(lines) + "\n"
