"""Span-based tracing over the simulated clock.

A span is a named interval of simulated time with a deterministic id and
an explicit parent (the innermost span open when it started), layered on
the pieces that already exist: :class:`~repro.perf.clock.SimClock`
supplies timestamps and an optional :class:`~repro.perf.trace.Tracer`
receives begin/end events under the ``span`` category, so ``repro
trace`` output and the legacy flat trace stay consistent.

Spans are cheap — two clock reads, one list append — and they never
advance the clock, so tracing cannot perturb simulated results.  The
recorder is bounded like the Tracer's ring: past ``capacity`` finished
spans the oldest are dropped (counted in :attr:`SpanRecorder.dropped`).

Export: :func:`repro.obs.exporters.chrome_trace_json` renders finished
spans in the Chrome ``about://tracing`` / Perfetto event format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.perf.clock import SimClock


@dataclass(frozen=True)
class Span:
    """One finished span (ids are per-recorder, deterministic)."""

    span_id: int
    parent_id: int | None
    name: str
    start_ns: float
    end_ns: float
    labels: tuple[tuple[str, str], ...] = ()

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class _ActiveSpan:
    span_id: int
    parent_id: int | None
    name: str
    start_ns: float
    labels: tuple[tuple[str, str], ...]


class SpanRecorder:
    """Collects spans against one clock; shared across a registry tree."""

    def __init__(
        self,
        clock: SimClock,
        tracer: Any = None,
        capacity: int = 65536,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.clock = clock
        #: Optional :class:`repro.perf.trace.Tracer` receiving span
        #: begin/end under the ``span`` category.
        self.tracer = tracer
        self.capacity = capacity
        self.finished: list[Span] = []
        self.dropped = 0
        self._stack: list[_ActiveSpan] = []
        self._next_id = 1

    # -- recording -----------------------------------------------------
    def begin(self, name: str, **labels: object) -> _ActiveSpan:
        parent = self._stack[-1].span_id if self._stack else None
        span = _ActiveSpan(
            span_id=self._next_id,
            parent_id=parent,
            name=name,
            start_ns=self.clock.now_ns,
            labels=tuple(
                (k, str(v)) for k, v in sorted(labels.items())
            ),
        )
        self._next_id += 1
        self._stack.append(span)
        if self.tracer is not None:
            self.tracer.emit("span", f"{name}.begin", span_id=span.span_id)
        return span

    def end(self, active: _ActiveSpan) -> Span:
        if not self._stack or self._stack[-1] is not active:
            raise RuntimeError(
                f"span {active.name!r} ended out of order"
            )
        self._stack.pop()
        span = Span(
            span_id=active.span_id,
            parent_id=active.parent_id,
            name=active.name,
            start_ns=active.start_ns,
            end_ns=self.clock.now_ns,
            labels=active.labels,
        )
        if len(self.finished) >= self.capacity:
            self.dropped += 1
            del self.finished[0]
        self.finished.append(span)
        if self.tracer is not None:
            self.tracer.emit(
                "span",
                f"{span.name}.end",
                span_id=span.span_id,
                dur_ns=span.duration_ns,
            )
        return span

    def span(self, name: str, **labels: object) -> "_SpanContext":
        """Context manager: ``with recorder.span("netfront.tx"): ...``."""
        return _SpanContext(self, name, labels)

    # -- queries -------------------------------------------------------
    def spans(self, name: str | None = None) -> list[Span]:
        if name is None:
            return list(self.finished)
        return [s for s in self.finished if s.name == name]

    def children_of(self, span: Span) -> list[Span]:
        return [s for s in self.finished if s.parent_id == span.span_id]

    def total_ns(self, name: str) -> float:
        return sum(s.duration_ns for s in self.spans(name))

    def clear(self) -> None:
        self.finished.clear()
        self.dropped = 0

    def render(self, limit: int = 50) -> str:
        """Deterministic fixed-width span table (``repro trace``)."""
        lines = [
            f"{'id':>6} {'parent':>6} {'start us':>14} {'dur us':>12}  name",
        ]
        for span in self.finished[-limit:]:
            parent = str(span.parent_id) if span.parent_id else "-"
            labels = " ".join(f"{k}={v}" for k, v in span.labels)
            name = f"{span.name} {labels}".rstrip()
            lines.append(
                f"{span.span_id:>6} {parent:>6} "
                f"{span.start_ns / 1e3:>14.3f} "
                f"{span.duration_ns / 1e3:>12.3f}  {name}"
            )
        return "\n".join(lines)


@dataclass
class _SpanContext:
    recorder: SpanRecorder
    name: str
    labels: dict
    finished: Span | None = field(default=None)
    _active: _ActiveSpan | None = field(default=None)

    def __enter__(self) -> "_SpanContext":
        self._active = self.recorder.begin(self.name, **self.labels)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.finished = self.recorder.end(self._active)
