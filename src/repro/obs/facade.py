"""The ``Telemetry`` facade: one object behind every stats surface.

Bundles a :class:`~repro.obs.registry.Registry` (metrics) with a
:class:`~repro.obs.tracing.SpanRecorder` (spans) on one simulated clock,
and exposes the three exporters.  ``XContainer.telemetry()`` returns one
of these; ``snapshot()`` is the single deterministic structure the
acceptance criteria ask for — icache, hypercall, I/O-batch, HTTP-latency
and fault counters in one query.
"""

from __future__ import annotations

from typing import Any

from repro.obs import exporters
from repro.obs.registry import Registry
from repro.obs.tracing import SpanRecorder
from repro.perf.clock import SimClock


class Telemetry:
    """Registry + span recorder over one clock; the ``telemetry()`` API."""

    def __init__(
        self,
        clock: SimClock | None = None,
        tracer: Any = None,
        span_capacity: int = 65536,
        **labels: object,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.registry = Registry(**labels)
        self.spans = SpanRecorder(
            self.clock, tracer=tracer, capacity=span_capacity
        )
        self.registry.spans = self.spans

    # -- scoping / spans ----------------------------------------------
    def child(self, **labels: object) -> Registry:
        """A label-scoped registry view (shares the store and spans)."""
        return self.registry.child(**labels)

    def span(self, name: str, **labels: object) -> Any:
        return self.registry.span(name, **labels)

    def attach_tracer(self, tracer: Any) -> None:
        """Route span begin/end events into a flat Tracer as well."""
        self.spans.tracer = tracer

    # -- instruments (delegation for the common cases) ----------------
    def counter(self, name: str, help: str = "", **labels: object) -> Any:
        return self.registry.counter(name, help=help, **labels)

    def gauge(self, name: str, help: str = "", **labels: object) -> Any:
        return self.registry.gauge(name, help=help, **labels)

    def histogram(self, name: str, help: str = "", **labels: object) -> Any:
        return self.registry.histogram(name, help=help, **labels)

    def value(self, name: str, **labels: object) -> float:
        return self.registry.value(name, **labels)

    # -- the one query ------------------------------------------------
    def snapshot(self) -> dict:
        """Metrics plus span aggregates, deterministically ordered."""
        snap = self.registry.snapshot()
        by_name: dict[str, dict[str, float]] = {}
        for span in self.spans.finished:
            agg = by_name.setdefault(
                span.name, {"count": 0, "total_ns": 0.0}
            )
            agg["count"] += 1
            agg["total_ns"] += span.duration_ns
        snap["spans"] = {
            "finished": len(self.spans.finished),
            "dropped": self.spans.dropped,
            "by_name": dict(sorted(by_name.items())),
        }
        return snap

    # -- exporters -----------------------------------------------------
    def prometheus_text(self) -> str:
        return exporters.prometheus_text(self.registry)

    def chrome_trace_json(self, pretty: bool = False) -> str:
        return exporters.chrome_trace_json(self.spans, pretty=pretty)

    def render_table(self) -> str:
        return exporters.render_table(self.registry)
