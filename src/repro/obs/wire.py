"""Substrate → registry bindings (the naming authority).

One function per substrate, each registering *bound* instruments that
read the substrate's existing stats struct lazily at collection time —
the hot paths keep their plain attribute increments, so wiring telemetry
cannot change simulated bytes or costs.  Everything here is duck-typed:
this module imports no substrate code, substrates call in through their
``bind_telemetry(registry)`` methods (or the :class:`~repro.core.
xcontainer.XContainer` constructor does it for them).

The metric names below are the single source of truth for the
``layer_component_unit`` convention documented in ``docs/telemetry.md``;
the legacy-accessor shims (``XContainer.icache_stats()`` et al.) resolve
their dict keys through the ``*_LEGACY`` tables so old and new surfaces
can never drift apart.
"""

from __future__ import annotations

from typing import Any

from repro.obs.registry import Registry

# -- legacy-accessor key maps (old dict key -> metric name) -----------------

NET_RING_LEGACY: dict[str, str] = {
    "requests": "xen_ring_requests_total",
    "responses": "xen_ring_responses_total",
    "bytes_moved": "xen_ring_bytes_moved_total",
    "kicks": "xen_ring_kicks_total",
    "ring_full_stalls": "xen_ring_full_stalls_total",
    "backend_deaths": "xen_ring_backend_deaths_total",
    "backend_restarts": "xen_ring_backend_restarts_total",
    "batches": "xen_ring_batches_total",
    "avg_batch_size": "xen_ring_avg_batch_size",
    "kicks_saved": "xen_ring_kicks_saved_total",
}

BLK_RING_LEGACY: dict[str, str] = {
    "reads": "xen_ring_reads_total",
    "writes": "xen_ring_writes_total",
    "bytes_moved": "xen_ring_bytes_moved_total",
    "backend_deaths": "xen_ring_backend_deaths_total",
    "backend_restarts": "xen_ring_backend_restarts_total",
    "ring_stalls": "xen_ring_full_stalls_total",
    "batches": "xen_ring_batches_total",
    "avg_batch_size": "xen_ring_avg_batch_size",
    "kicks_saved": "xen_ring_kicks_saved_total",
}

ICACHE_LEGACY: dict[str, str] = {
    "hits": "arch_icache_hits_total",
    "misses": "arch_icache_misses_total",
    "invalidations": "arch_icache_invalidations_total",
}


# -- arch -------------------------------------------------------------------


def wire_cpu(registry: Registry, cpu: Any, index: int) -> None:
    """Decode-cache counters of one vCPU (``cpu`` label = its index)."""
    stats = cpu.icache_stats
    registry.bind(
        "arch_icache_hits_total",
        lambda: stats.hits,
        help="instructions executed from cached decoded blocks",
        cpu=index,
    )
    registry.bind(
        "arch_icache_misses_total",
        lambda: stats.misses,
        help="basic-block decode cache fills",
        cpu=index,
    )
    registry.bind(
        "arch_icache_invalidations_total",
        lambda: stats.invalidations,
        help="cached blocks dropped by stores to their text pages",
        cpu=index,
    )
    tstats = cpu.trace_stats
    registry.bind(
        "arch_trace_compiles_total",
        lambda: tstats.compiles,
        help="hot block chains compiled into superblock traces",
        cpu=index,
    )
    registry.bind(
        "arch_trace_aborts_total",
        lambda: tstats.aborts,
        help="chains rejected by the trace recorder",
        cpu=index,
    )
    registry.bind(
        "arch_trace_executions_total",
        lambda: tstats.executions,
        help="entries into compiled trace code",
        cpu=index,
    )
    registry.bind(
        "arch_trace_instructions_total",
        lambda: tstats.instructions,
        help="instructions retired inside compiled traces",
        cpu=index,
    )
    registry.bind(
        "arch_trace_guard_exits_total",
        lambda: tstats.guard_exits,
        help="trace bail-outs through branch/value/liveness guards",
        cpu=index,
    )
    registry.bind(
        "arch_trace_invalidations_total",
        lambda: tstats.invalidations,
        help="traces evicted by stores or stale page generations",
        cpu=index,
    )
    registry.bind(
        "arch_trace_code_bytes",
        lambda: tstats.code_bytes,
        help="generated trace source bytes currently installed",
        kind="gauge",
        cpu=index,
    )


# -- core -------------------------------------------------------------------


def wire_xkernel(registry: Registry, xkernel: Any) -> None:
    stats = xkernel.stats
    registry.bind(
        "core_xkernel_syscalls_trapped_total",
        lambda: stats.syscalls_trapped,
        help="syscall instructions that trapped into the X-Kernel",
    )
    registry.bind(
        "core_xkernel_ud_traps_total",
        lambda: stats.ud_traps,
        help="#UD traps (jumps into patched call tails, section 4.4)",
    )
    registry.bind(
        "core_xkernel_pt_updates_total",
        lambda: stats.pt_updates,
        help="validated page-table update entries",
    )
    registry.bind_family(
        "core_hypercalls_total",
        "name",
        lambda: stats.hypercalls,
        help="validated hypercalls by name",
    )


def wire_abom(registry: Registry, abom: Any) -> None:
    stats = abom.stats
    registry.bind_family(
        "core_abom_patches_total",
        "phase",
        lambda: {
            "7byte": stats.patches_7byte,
            "9byte": stats.patches_9byte,
            "go": stats.patches_go,
        },
        help="syscall sites patched online, by pattern phase (section 4.4)",
    )
    registry.bind(
        "core_abom_patch_failures_total",
        lambda: stats.patch_failures,
        help="patch attempts abandoned (lost cmpxchg or bad window)",
    )
    registry.bind(
        "core_abom_unrecognized_sites_total",
        lambda: stats.unrecognized_sites,
        help="trapped sites matching no ABOM pattern",
    )
    registry.bind(
        "core_abom_ud_fixups_total",
        lambda: stats.ud_fixups,
        help="jumps into a patched tail fixed up by RIP rewind",
    )
    registry.bind(
        "core_abom_cmpxchg_contentions_total",
        lambda: stats.cmpxchg_contentions,
        help="cmpxchg patch losses to a racing vCPU",
    )


def wire_libos(registry: Registry, libos: Any) -> None:
    stats = libos.stats
    registry.bind_family(
        "core_libos_syscalls_total",
        "path",
        lambda: {
            "lightweight": stats.lightweight_syscalls,
            "forwarded": stats.forwarded_syscalls,
        },
        help="syscalls served by the X-LibOS, by entry path",
    )
    registry.bind(
        "core_libos_return_address_skips_total",
        lambda: stats.return_address_skips,
        help="dead syscall/jmp bytes skipped at the return address",
    )
    registry.bind(
        "core_libos_user_mode_irets_total",
        lambda: stats.user_mode_irets,
        help="iret returns handled in user mode (no hypercall)",
    )
    registry.bind(
        "core_libos_events_delivered_total",
        lambda: stats.events_delivered,
        help="events delivered in user mode (no hypercall)",
    )


# -- xen --------------------------------------------------------------------


def wire_ring_driver(registry: Registry, name: str, driver: Any) -> None:
    """Either split-driver flavour; fields resolved via the legacy maps."""
    stats = driver.stats
    legacy = (
        BLK_RING_LEGACY if hasattr(stats, "reads") else NET_RING_LEGACY
    )
    for field, metric in legacy.items():
        kind = "gauge" if metric == "xen_ring_avg_batch_size" else "counter"
        registry.bind(
            metric,
            # bind the field name, not the loop variable
            (lambda s=stats, f=field: getattr(s, f)),
            help="split-driver ring counters (see docs/io_batching.md)",
            kind=kind,
            driver=name,
        )


def wire_hypercall_table(registry: Registry, table: Any) -> None:
    """Per-name counts of a stock-Xen :class:`HypercallTable`."""
    registry.bind_family(
        "xen_hypercalls_total",
        "name",
        lambda: dict(sorted(table.counts.items())),
        help="stock-Xen hypercalls dispatched, by name",
    )


def wire_events(registry: Registry, events: Any) -> None:
    registry.bind(
        "xen_evtchn_hypercall_deliveries_total",
        lambda: events.hypercall_deliveries,
        help="event batches delivered via the stock PV hypercall path",
    )
    registry.bind(
        "xen_evtchn_direct_deliveries_total",
        lambda: events.direct_deliveries,
        help="events delivered by the X-LibOS direct jump (section 4.2)",
    )
    registry.bind(
        "xen_evtchn_notifications_coalesced_total",
        lambda: events.notifications_coalesced,
        help="notifications absorbed into an open batch scope",
    )
    registry.bind(
        "xen_evtchn_flushes_total",
        lambda: events.flushes,
        help="batch-scope flushes (one shared pending check each)",
    )
    registry.bind(
        "xen_evtchn_notifications_dropped_total",
        lambda: events.notifications_dropped,
        help="injected notification drops",
    )
    registry.bind(
        "xen_evtchn_notifications_delayed_total",
        lambda: events.notifications_delayed,
        help="injected notification delays",
    )


def wire_grants(registry: Registry, grants: Any) -> None:
    registry.bind(
        "xen_grant_copies_total",
        lambda: grants.copies,
        help="logical GNTTABOP_copy operations",
    )
    registry.bind(
        "xen_grant_batched_copies_total",
        lambda: grants.batched_copies,
        help="vectorized copy hypercalls (one per batch)",
    )
    registry.bind(
        "xen_grant_copy_hypercalls_saved_total",
        lambda: grants.copy_hypercalls_saved,
        help="per-copy hypercalls elided by batching",
    )
    registry.bind(
        "xen_grant_map_failures_total",
        lambda: grants.map_failures,
        help="transient grant map failures",
    )
    registry.bind(
        "xen_grant_copy_failures_total",
        lambda: grants.copy_failures,
        help="transient grant copy failures",
    )
    registry.bind(
        "xen_grant_active",
        lambda: grants.active_grants,
        help="grants currently issued",
        kind="gauge",
    )


def wire_scheduler(registry: Registry, scheduler: Any) -> None:
    registry.bind(
        "xen_sched_switches_total",
        lambda: scheduler.switches,
        help="vCPU context switches charged by the credit scheduler",
    )
    registry.bind(
        "xen_sched_stall_events_total",
        lambda: scheduler.stall_events,
        help="injected vCPU stalls",
    )
    registry.bind(
        "xen_sched_storm_events_total",
        lambda: scheduler.storm_events,
        help="injected interrupt storms",
    )
    registry.bind(
        "xen_sched_runnable",
        lambda: len(scheduler.runnable),
        help="currently runnable vCPUs",
        kind="gauge",
    )


def wire_exec_engine(registry: Registry, engine: Any) -> None:
    """``sched_*`` metrics of the discrete-event fleet engine.

    Every bound value is engine-invariant (byte-identical between the
    hybrid and the stepped oracle modes); the engine's host-side
    ``polls`` counter is intentionally NOT exported, because it is the
    one number the two modes legitimately disagree on.
    """
    stats = engine.stats
    registry.bind(
        "sched_fastforward_ns_total",
        lambda: stats.fastforward_ns,
        help="simulated idle ns skipped by fast-forwarding parked "
             "domains to their wake events",
    )
    registry.bind(
        "sched_wake_events_total",
        lambda: stats.wake_events,
        help="wake kicks delivered to parked domains",
    )
    registry.bind(
        "sched_wake_posts_total",
        lambda: stats.posts,
        help="work posts published to domain mailbox rings",
    )
    registry.bind(
        "sched_wake_drops_total",
        lambda: stats.drops,
        help="wake kicks lost to injected SCHED_WAKE drops",
    )
    registry.bind(
        "sched_wake_redeliveries_total",
        lambda: stats.redeliveries,
        help="watchdog re-kicks scheduled after dropped wakes",
    )
    registry.bind(
        "sched_wake_spurious_total",
        lambda: stats.spurious_wakes,
        help="kicks that found an empty mailbox (coalesced wakes)",
    )
    registry.bind(
        "sched_instructions_total",
        lambda: stats.instructions,
        help="guest instructions retired across wake bursts",
    )
    registry.bind(
        "sched_domains_parked",
        lambda: engine.n_parked,
        help="domains currently parked in the idle loop",
        kind="gauge",
    )
    registry.bind(
        "sched_domains",
        lambda: engine.n_domains,
        help="domains the engine owns (dead ones included)",
        kind="gauge",
    )


# -- guest / net ------------------------------------------------------------


def wire_netstack(registry: Registry, netstack: Any) -> None:
    stats = netstack.stats
    registry.bind(
        "net_stack_requests_total",
        lambda: stats.requests,
        help="request/response pairs priced by the flow-level stack",
    )
    registry.bind(
        "net_stack_bytes_in_total", lambda: stats.bytes_in,
        help="payload bytes into the stack",
    )
    registry.bind(
        "net_stack_bytes_out_total", lambda: stats.bytes_out,
        help="payload bytes out of the stack",
    )
    registry.bind(
        "net_stack_connections_total", lambda: stats.connections,
        help="TCP connection setups",
    )
    registry.bind(
        "net_stack_retransmits_total", lambda: stats.retransmits,
        help="segments retransmitted after injected loss",
    )
    registry.bind(
        "net_stack_duplicates_total", lambda: stats.duplicates,
        help="injected duplicate segments recognized and dropped",
    )
    registry.bind(
        "net_stack_reorders_total", lambda: stats.reorders,
        help="injected out-of-order segments re-queued",
    )


def wire_http_server(registry: Registry, server: Any) -> None:
    stats = server.stats
    registry.bind(
        "net_http_requests_total",
        lambda: stats.requests,
        help="HTTP requests served by the functional static server",
    )
    registry.bind(
        "net_http_errors_total",
        lambda: stats.errors,
        help="HTTP 4xx responses",
    )
    registry.bind(
        "net_http_bytes_served_total",
        lambda: stats.bytes_served,
        help="response body bytes served",
    )


# -- sanitize ---------------------------------------------------------------


def wire_sanitizers(registry: Registry, suite: Any) -> None:
    """Expose a :class:`~repro.sanitize.suite.SanitizerSuite`'s counters.

    One ``sanitize_*`` metric per suite stat (the same pairs ``stats()``
    reports), plus a findings family labelled by checker — so a scrape
    shows at a glance whether a run tripped any checker and how much
    protocol traffic each one audited.
    """
    for name, _ in suite.stats():
        registry.bind(
            f"sanitize_{name}_total",
            (lambda s=suite, n=name: dict(s.stats())[n]),
            help="sanitizer suite counters (see docs/sanitizers.md)",
        )
    registry.bind_family(
        "sanitize_findings_total",
        "checker",
        lambda: {
            "race": len(suite.race.findings) if suite.race else 0,
            "grants": len(suite.grants.findings) if suite.grants else 0,
            "rings": len(suite.rings.findings) if suite.rings else 0,
        },
        help="sanitizer findings by checker",
    )


# -- faults -----------------------------------------------------------------

_FAULT_LIFECYCLE = (
    ("occurrences", "faults_occurrences_total",
     "occurrences of injectable operations, by site"),
    ("injected", "faults_injected_total", "faults injected, by site"),
    ("retried", "faults_retried_total", "retry attempts, by site"),
    ("recovered", "faults_recovered_total", "recoveries, by site"),
    ("fatal", "faults_fatal_total", "unrecovered failures, by site"),
)


def wire_faults(registry: Registry, engine: Any) -> None:
    for field, metric, help_text in _FAULT_LIFECYCLE:
        registry.bind_family(
            metric,
            "site",
            (lambda f=field, e=engine: {
                site: getattr(counters, f)
                for site, counters in sorted(e.counters.items())
            }),
            help=help_text,
        )
