"""A deterministic end-to-end workload exercising every telemetry source.

``repro metrics`` and ``repro trace`` need *something* to measure; this
module runs a miniature X-Container day — a syscall loop on the
interpreter (icache + ABOM + hypercalls), batched transmits through a
split net driver with one injected backend kill (ring + grant + event +
fault counters), and a functional HTTP run (latency histogram + spans) —
all on one simulated clock and one registry.  Same seed + same arguments
⇒ byte-identical exports; the golden-file tests pin exactly that.
"""

from __future__ import annotations

from repro.core.xcontainer import XContainer
from repro.core.xlibos import CountingServices
from repro.faults import sites
from repro.faults.plan import FaultPlan, FaultSpec, Nth
from repro.obs import wire
from repro.obs.facade import Telemetry
from repro.perf.clock import SimClock
from repro.workloads.unixbench import build_syscall_bench
from repro.workloads.wrk_functional import FunctionalWrk
from repro.xen.drivers import SplitNetDriver
from repro.xen.hypervisor import DomainKind, XenHypervisor

#: Descriptor trains pushed through the net ring (the second descriptor
#: of the first train trips the injected backend kill, so the run shows
#: a full death → retry → reconnect → recovery cycle).
DEMO_TRAINS = ((1500, 1500, 9000), (1500,) * 8, (64, 256, 1024, 4096))


def run_demo(
    seed: int = 1234,
    requests: int = 8,
    syscall_iters: int = 25,
) -> Telemetry:
    """Run the demo workload; returns the populated :class:`Telemetry`.

    Deterministic in ``(seed, requests, syscall_iters)`` — the fault plan
    seed is the only randomness source, and it only feeds probability
    triggers (the demo plan uses none, so ``seed`` is future-proofing).
    """
    clock = SimClock()
    engine = FaultPlan(
        (FaultSpec(sites.NET_BACKEND, "kill", Nth(2)),), seed=seed
    ).compile(clock)

    xc = XContainer(
        CountingServices(), clock=clock, name="demo", faults=engine
    )
    tel = xc.telemetry()

    # Interpreter + ABOM + hypercalls: a real machine-code syscall loop.
    with tel.span("demo.syscall_bench", iters=syscall_iters):
        xc.run(build_syscall_bench(syscall_iters))

    # Xen I/O path: batched transmits over a split net driver, with the
    # grant table and event channels wired in, and one backend kill.
    hv = XenHypervisor(costs=xc.costs, clock=clock)
    guest = hv.create_domain("demo-guest")
    backend = hv.create_domain("demo-backend", DomainKind.DRIVER)
    events = hv.event_channels()
    driver = SplitNetDriver(
        guest,
        backend,
        hv.grants,
        events,
        costs=xc.costs,
        clock=clock,
        faults=engine,
    )
    xc.attach_io_driver("net0", driver)
    wire.wire_grants(tel.registry, hv.grants)
    wire.wire_events(tel.registry, events)
    wire.wire_hypercall_table(tel.registry, hv.hypercalls)
    for train in DEMO_TRAINS:
        with tel.span("netfront.tx", descriptors=len(train)):
            driver.transmit_batch(train)

    # Functional HTTP stack on the same clock: latency histogram + spans.
    wrk = FunctionalWrk(
        clock=clock, telemetry=tel.child(component="http")
    )
    with tel.span("demo.http_run", requests=requests):
        wrk.run(requests=requests)

    return tel
