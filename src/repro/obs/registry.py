"""The label-aware metrics registry — one API behind every counter.

§3.1 of the paper argues X-Containers keep "existing software
development, profiling, debugging, and deploying tools" usable.  This
module is the reproduction's own observability substrate: every
per-subsystem counter (interpreter decode cache, ABOM patch phases,
hypercalls, event-channel kicks, grant batches, ring occupancy, HTTP
latency, fault lifecycle) reports through one :class:`Registry` instead
of a private ad-hoc struct, so a single query answers "where did the
nanoseconds go" across layers.

Three instrument kinds, Prometheus-shaped:

* :class:`Counter` — monotonically increasing count (``_total`` suffix);
* :class:`Gauge` — a value that can go anywhere;
* :class:`Histogram` — observations bucketed into fixed log-scale
  nanosecond buckets (:data:`DEFAULT_NS_BUCKETS`), with sum and count.

Two binding styles:

* **direct** — hot paths call ``counter.inc()`` / ``hist.observe(ns)``;
* **bound** — existing substrate structs stay the hot-path store
  (attribute increments, zero new cost on the simulated data path) and
  the registry *reads* them lazily at collection time via
  :meth:`Registry.bind` / :meth:`Registry.bind_family`.  This is how
  telemetry keeps simulation results byte-identical: nothing on the hot
  path changes, the registry is a view.

Scoping: :meth:`Registry.child` returns a view that stamps extra labels
(``domain="xc0"``, ``component="http"``) on every instrument it creates,
while sharing the root's store — so one snapshot covers every layer.

Naming convention (see ``docs/telemetry.md``): ``layer_component_unit``,
e.g. ``arch_icache_hits_total``, ``xen_grant_copies_total``,
``net_http_request_latency_ns``.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Callable, Iterable, Iterator, Mapping

#: Fixed log-scale nanosecond buckets: 16 ns · 4^k for k in [0, 13]
#: (16 ns … ~17 min), the span between one interpreted instruction and
#: the longest chaos scenario.  Fixed so exporter output is stable and
#: histograms from different runs are mergeable.
DEFAULT_NS_BUCKETS: tuple[float, ...] = tuple(
    16.0 * 4.0**k for k in range(14)
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_LABEL_RE = re.compile(r"^[a-z][a-z0-9_]*$")

LabelItems = tuple[tuple[str, str], ...]


def _canon_labels(labels: Mapping[str, object]) -> LabelItems:
    """Validated, sorted, stringified label items (the identity key)."""
    items = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ValueError(f"bad label name {key!r}")
        items.append((key, str(labels[key])))
    return tuple(items)


class Instrument:
    """Base: identity is ``(name, labels)``; subclasses hold the value."""

    kind = "untyped"

    __slots__ = ("name", "labels", "help")

    def __init__(self, name: str, labels: LabelItems, help: str = "") -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def key(self) -> tuple[str, LabelItems]:
        return (self.name, self.labels)

    def value(self) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:
        labels = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{type(self).__name__}({self.name}{{{labels}}})"


class Counter(Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: LabelItems, help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up: {amount}")
        self._value += amount

    def value(self) -> float:
        return self._value


class Gauge(Instrument):
    """A value that can be set anywhere (ring occupancy, active grants)."""

    kind = "gauge"

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: LabelItems, help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    def value(self) -> float:
        return self._value


class Histogram(Instrument):
    """Observations in fixed log-scale buckets, plus sum and count.

    ``bucket_counts[i]`` counts observations ``<= buckets[i]``
    (cumulative counts are computed at export time); the implicit
    ``+Inf`` bucket is ``count``.
    """

    kind = "histogram"

    __slots__ = ("buckets", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_NS_BUCKETS,
    ) -> None:
        super().__init__(name, labels, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be sorted and non-empty: {buckets}")
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bucket i covers (buckets[i-1], buckets[i]]; values beyond the
        # last edge land only in the implicit +Inf bucket (count).
        self.sum += value
        self.count += 1
        index = bisect_left(self.buckets, value)
        if index < len(self.bucket_counts):
            self.bucket_counts[index] += 1

    def value(self) -> float:
        return self.sum

    def cumulative(self) -> list[int]:
        """Cumulative counts per bucket edge (Prometheus ``le`` shape)."""
        out = []
        running = 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear bucket interpolation.

        The standard Prometheus ``histogram_quantile`` scheme: find the
        bucket holding the target rank and interpolate between its
        edges.  Observations beyond the last edge (the implicit ``+Inf``
        bucket) clamp to the last finite edge, so the estimate never
        invents values the buckets cannot resolve.
        """
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1): {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        lower = 0.0
        for edge, bucket_count in zip(self.buckets, self.bucket_counts):
            if bucket_count and cum + bucket_count >= rank:
                fraction = (rank - cum) / bucket_count
                return lower + fraction * (edge - lower)
            cum += bucket_count
            lower = edge
        return self.buckets[-1]

    def merge_counts(
        self,
        bucket_counts: Iterable[int],
        sum_: float,
        count: int,
    ) -> None:
        """Fold pre-bucketed observations in (sharded producers).

        ``bucket_counts`` must align with this histogram's edges; the
        serve engine's worker shards bucket locally and merge here in
        shard order, so the result is byte-identical to observing every
        value centrally.
        """
        counts = list(bucket_counts)
        if len(counts) != len(self.bucket_counts):
            raise ValueError(
                f"bucket mismatch: got {len(counts)} counts for "
                f"{len(self.bucket_counts)} buckets"
            )
        for i, bucket_count in enumerate(counts):
            self.bucket_counts[i] += bucket_count
        self.sum += sum_
        self.count += count

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class _Bound(Instrument):
    """A lazy instrument: value read from a callback at collection time.

    The substrate keeps its struct (``stats.requests += 1`` stays the
    hot path); the registry materializes the number only when asked.
    """

    __slots__ = ("_fn", "kind")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        fn: Callable[[], float],
        help: str = "",
        kind: str = "counter",
    ) -> None:
        super().__init__(name, labels, help)
        if kind not in ("counter", "gauge"):
            raise ValueError(f"bound instruments are counter|gauge: {kind}")
        self._fn = fn
        self.kind = kind

    def value(self) -> float:
        return float(self._fn())


class _BoundFamily:
    """A callback producing one sample per dynamic label value.

    ``fn()`` returns ``{label_value: number}``; each entry becomes a
    sample ``name{**labels, label=label_value}``.  Used for naturally
    dict-shaped substrate counters (hypercalls by name, fault lifecycle
    by site) whose key set grows during the run.
    """

    __slots__ = ("name", "labels", "label", "help", "kind", "_fn")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        label: str,
        fn: Callable[[], Mapping[str, float]],
        help: str = "",
        kind: str = "counter",
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        if not _LABEL_RE.match(label):
            raise ValueError(f"bad label name {label!r}")
        self.name = name
        self.labels = labels
        self.label = label
        self.help = help
        self.kind = kind
        self._fn = fn

    def samples(self) -> Iterator[tuple[LabelItems, float]]:
        for value_key, number in self._fn().items():
            labels = _canon_labels(
                dict(self.labels) | {self.label: str(value_key)}
            )
            yield labels, float(number)


class Sample:
    """One collected data point (flattened view over every instrument)."""

    __slots__ = ("name", "labels", "kind", "value", "help")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        kind: str,
        value: Any,
        help: str = "",
    ) -> None:
        self.name = name
        self.labels = labels
        self.kind = kind
        self.value = value
        self.help = help

    @property
    def key(self) -> tuple[str, LabelItems]:
        return (self.name, self.labels)


class Registry:
    """Instrument store with label scoping via child views.

    The root owns the store; :meth:`child` returns a view whose
    instruments carry extra scope labels but live in the same store, so
    :meth:`snapshot` at any node sees the whole tree.  Instrument
    lookups are get-or-create on ``(name, labels)`` — asking twice
    returns the same object (and conflicting kinds raise).
    """

    def __init__(self, **labels: object) -> None:
        self._scope = _canon_labels(labels)
        self._instruments: dict[tuple[str, LabelItems], Instrument] = {}
        self._families: list[_BoundFamily] = []
        #: Shared span recorder (installed by the Telemetry facade).
        self.spans = None

    # -- scoping -------------------------------------------------------
    def child(self, **labels: object) -> "Registry":
        scope = dict(self._scope) | {k: str(v) for k, v in labels.items()}
        view = Registry.__new__(Registry)
        view._scope = _canon_labels(scope)
        view._instruments = self._instruments
        view._families = self._families
        view.spans = self.spans
        return view

    @property
    def scope(self) -> LabelItems:
        return self._scope

    def _labels(self, labels: Mapping[str, object]) -> LabelItems:
        merged = dict(self._scope)
        merged.update({k: str(v) for k, v in labels.items()})
        return _canon_labels(merged)

    # -- instrument creation (get-or-create) ---------------------------
    def _get_or_create(
        self,
        cls: type,
        name: str,
        labels: Mapping[str, object],
        help: str,
        **kwargs: Any,
    ) -> Any:
        key = (name, self._labels(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls) or kwargs.get(
                "kind", existing.kind
            ) != existing.kind:
                raise ValueError(
                    f"instrument {name!r} already registered as "
                    f"{existing.kind}"
                )
            return existing
        instrument = cls(name, key[1], help=help, **kwargs)
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_NS_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, help, buckets=buckets
        )

    def bind(
        self,
        name: str,
        fn: Callable[[], float],
        help: str = "",
        kind: str = "counter",
        **labels: object,
    ) -> None:
        """Register a lazily-read instrument backed by ``fn()``.

        Re-binding the same ``(name, labels)`` replaces the callback —
        substrates that reconnect (driver restart) stay wired.
        """
        key = (name, self._labels(labels))
        existing = self._instruments.get(key)
        if existing is not None and not isinstance(existing, _Bound):
            raise ValueError(
                f"instrument {name!r} already registered as {existing.kind}"
            )
        self._instruments[key] = _Bound(
            name, key[1], fn, help=help, kind=kind
        )

    def bind_family(
        self,
        name: str,
        label: str,
        fn: Callable[[], Mapping[str, float]],
        help: str = "",
        kind: str = "counter",
        **labels: object,
    ) -> None:
        """Register a dict-valued callback as one sample per key."""
        scope = self._labels(labels)
        for family in self._families:
            if family.name == name and family.labels == scope:
                family._fn = fn  # rebind (same identity)
                return
        self._families.append(
            _BoundFamily(name, scope, label, fn, help=help, kind=kind)
        )

    # -- spans ---------------------------------------------------------
    def span(self, name: str, **labels: object) -> Any:
        """Open a span scoped with this registry's labels.

        ``registry.span("netfront.tx", domain="xc0")`` — requires a
        :class:`~repro.obs.tracing.SpanRecorder` (installed by the
        :class:`~repro.obs.facade.Telemetry` facade).
        """
        if self.spans is None:
            raise RuntimeError(
                "no span recorder attached (create this registry via "
                "repro.obs.Telemetry to enable tracing)"
            )
        merged = dict(self._scope)
        merged.update({k: str(v) for k, v in labels.items()})
        return self.spans.span(name, **merged)

    # -- collection ----------------------------------------------------
    def collect(self) -> list[Sample]:
        """Every sample, deterministically ordered by (name, labels).

        Bound instruments and families are materialized here; histograms
        produce one Sample carrying the instrument itself as ``value``
        (exporters expand buckets).
        """
        out: list[Sample] = []
        for (name, labels), inst in self._instruments.items():
            if isinstance(inst, Histogram):
                out.append(Sample(name, labels, inst.kind, inst, inst.help))
            else:
                out.append(
                    Sample(name, labels, inst.kind, inst.value(), inst.help)
                )
        for family in self._families:
            for labels, value in family.samples():
                out.append(
                    Sample(family.name, labels, family.kind, value,
                           family.help)
                )
        out.sort(key=lambda s: (s.name, s.labels))
        return out

    def value(self, name: str, **labels: object) -> float:
        """Sum of all samples of ``name`` whose labels include ``labels``.

        The cross-layer query primitive: ``value("arch_icache_hits_total")``
        sums over every vCPU; adding ``cpu=0`` narrows to one.
        """
        want = set(_canon_labels(labels))
        total = 0.0
        found = False
        for sample in self.collect():
            if sample.name != name or not want <= set(sample.labels):
                continue
            found = True
            if isinstance(sample.value, Histogram):
                total += sample.value.sum
            else:
                total += sample.value
        if not found:
            raise KeyError(f"no samples for metric {name!r}")
        return total

    def snapshot(self) -> dict:
        """One deterministic nested structure over every instrument.

        Shape::

            {"counters": {"name{k=v}": value, ...},
             "gauges":   {...},
             "histograms": {"name{k=v}": {"count": n, "sum": s,
                                          "mean": m,
                                          "buckets": {"16": c, ...}}}}

        Keys are rendered ``name{label=value,...}`` strings sorted
        lexicographically, so two runs with the same history produce
        byte-identical JSON.
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for sample in self.collect():
            key = render_sample_key(sample.name, sample.labels)
            if sample.kind == "histogram":
                hist: Histogram = sample.value
                histograms[key] = {
                    "count": hist.count,
                    "sum": _num(hist.sum),
                    "mean": _num(hist.mean),
                    "buckets": {
                        format_value(edge): count
                        for edge, count in zip(
                            hist.buckets, hist.cumulative()
                        )
                    },
                }
            elif sample.kind == "gauge":
                gauges[key] = _num(sample.value)
            else:
                counters[key] = _num(sample.value)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def _num(value: float) -> float | int:
    """Integral floats become ints (stable, readable JSON)."""
    return int(value) if float(value).is_integer() else float(value)


def render_sample_key(name: str, labels: LabelItems) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def format_value(value: float) -> str:
    """Stable numeric rendering: integers without a decimal point."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return str(int(value))
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
