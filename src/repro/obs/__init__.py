"""``repro.obs`` — unified telemetry: metrics registry, spans, exporters.

One API behind every counter in the reproduction (§3.1's "profiling and
debugging tools keep working", applied to ourselves):

* :class:`Registry` / :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — label-aware instruments with per-domain scoping
  via child registries;
* :class:`Telemetry` — the facade ``XContainer.telemetry()`` returns;
* :class:`SpanRecorder` / ``registry.span(...)`` — span tracing over the
  simulated clock, layered on :class:`repro.perf.trace.Tracer`;
* :func:`prometheus_text`, :func:`chrome_trace_json`,
  :func:`render_table` — deterministic exporters (``repro metrics``,
  ``repro trace``).

See ``docs/telemetry.md`` for the naming convention and the migration
table from the legacy per-subsystem accessors.
"""

from repro.obs.exporters import (
    chrome_trace_json,
    prometheus_text,
    render_table,
)
from repro.obs.facade import Telemetry
from repro.obs.registry import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
)
from repro.obs.tracing import Span, SpanRecorder

__all__ = [
    "Counter",
    "DEFAULT_NS_BUCKETS",
    "Gauge",
    "Histogram",
    "Registry",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "chrome_trace_json",
    "prometheus_text",
    "render_table",
]
