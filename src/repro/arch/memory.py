"""Paged memory with permission bits.

A sparse 4 KiB-paged address space.  Pages carry the permission flags ABOM
cares about: text pages are mapped read-only, so the patcher must run with
the write-protect check disabled (the paper's "disables ... the
write-protection bit in the CR-0 register"), and patched pages get their
DIRTY bit set (§4.4: "the page table dirty bit will be set for read-only
pages").
"""

from __future__ import annotations

from enum import IntFlag

PAGE_SIZE = 4096
PAGE_SHIFT = 12


class PageFlags(IntFlag):
    PRESENT = 1
    WRITABLE = 2
    EXECUTABLE = 4
    USER = 8
    GLOBAL = 16
    DIRTY = 32


class PageFault(Exception):
    """Raised on access to an unmapped page or a forbidden write."""

    def __init__(self, addr: int, reason: str) -> None:
        super().__init__(f"page fault at {addr:#x}: {reason}")
        self.addr = addr
        self.reason = reason


class _Page:
    __slots__ = ("data", "flags")

    def __init__(self, flags: PageFlags) -> None:
        self.data = bytearray(PAGE_SIZE)
        self.flags = flags


class PagedMemory:
    """Sparse 64-bit paged address space.

    ``wp_enabled`` models the CR0.WP bit: while True (the default), writes to
    non-WRITABLE pages fault even from supervisor code.  ABOM clears it
    around a patch and restores it afterwards.
    """

    def __init__(self) -> None:
        self._pages: dict[int, _Page] = {}
        self.wp_enabled = True

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_region(self, addr: int, size: int, flags: PageFlags) -> None:
        """Map (or re-flag) all pages covering ``[addr, addr + size)``."""
        if size <= 0:
            raise ValueError(f"cannot map region of size {size}")
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        for index in range(first, last + 1):
            page = self._pages.get(index)
            if page is None:
                self._pages[index] = _Page(flags | PageFlags.PRESENT)
            else:
                page.flags = flags | PageFlags.PRESENT

    def is_mapped(self, addr: int) -> bool:
        return (addr >> PAGE_SHIFT) in self._pages

    def page_flags(self, addr: int) -> PageFlags:
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            raise PageFault(addr, "not mapped")
        return page.flags

    def set_page_flags(self, addr: int, flags: PageFlags) -> None:
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            raise PageFault(addr, "not mapped")
        page.flags = flags | PageFlags.PRESENT

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> bytes:
        out = bytearray()
        remaining = size
        cursor = addr
        while remaining > 0:
            page = self._pages.get(cursor >> PAGE_SHIFT)
            if page is None:
                raise PageFault(cursor, "read of unmapped page")
            offset = cursor & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - offset)
            out += page.data[offset : offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        remaining = memoryview(data)
        cursor = addr
        while remaining:
            page = self._pages.get(cursor >> PAGE_SHIFT)
            if page is None:
                raise PageFault(cursor, "write to unmapped page")
            if self.wp_enabled and not page.flags & PageFlags.WRITABLE:
                raise PageFault(cursor, "write to read-only page")
            offset = cursor & (PAGE_SIZE - 1)
            chunk = min(len(remaining), PAGE_SIZE - offset)
            page.data[offset : offset + chunk] = remaining[:chunk]
            if not page.flags & PageFlags.WRITABLE:
                # Supervisor write with WP disabled: hardware still records
                # the store in the dirty bit (§4.4).
                page.flags |= PageFlags.DIRTY
            cursor += chunk
            remaining = remaining[chunk:]

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, (value & ((1 << 64) - 1)).to_bytes(8, "little"))

    def read_u32(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 4), "little")

    def write_u32(self, addr: int, value: int) -> None:
        self.write(addr, (value & ((1 << 32) - 1)).to_bytes(4, "little"))

    # ------------------------------------------------------------------
    # Atomic compare-exchange (the patcher's only write primitive)
    # ------------------------------------------------------------------
    def compare_exchange(self, addr: int, expected: bytes, new: bytes) -> bool:
        """Atomically replace ``expected`` with ``new`` at ``addr``.

        Models the ``cmpxchg``-based patching of §4.4: at most eight bytes,
        and the store happens only if the current contents still equal
        ``expected``.  Returns True on success.  Respects ``wp_enabled``
        exactly like :meth:`write`.
        """
        if len(expected) != len(new):
            raise ValueError("compare_exchange operand sizes differ")
        if not 1 <= len(new) <= 8:
            raise ValueError(
                f"cmpxchg can exchange 1..8 bytes, not {len(new)}"
            )
        current = self.read(addr, len(expected))
        if current != expected:
            return False
        self.write(addr, new)
        return True

    def dirty_pages(self) -> list[int]:
        """Page-aligned addresses of all pages with the DIRTY bit set."""
        return sorted(
            index << PAGE_SHIFT
            for index, page in self._pages.items()
            if page.flags & PageFlags.DIRTY
        )
