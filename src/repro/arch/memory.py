"""Paged memory with permission bits.

A sparse 4 KiB-paged address space.  Pages carry the permission flags ABOM
cares about: text pages are mapped read-only, so the patcher must run with
the write-protect check disabled (the paper's "disables ... the
write-protection bit in the CR-0 register"), and patched pages get their
DIRTY bit set (§4.4: "the page table dirty bit will be set for read-only
pages").

Each page additionally carries a **generation counter**, bumped on every
store that touches it (including the ``cmpxchg`` stores ABOM uses) and on
permission changes.  The CPU's basic-block decode cache stamps cached
blocks with the generations of the pages they were decoded from and drops
a block the moment a stamp goes stale — the software analogue of the
hardware i-cache coherence §4.4's atomic-patch argument relies on.  Write
observers provide the eager push-side of the same protocol.  The trace
cache (``repro.arch.tracecache``) rides the identical stamps and
observers for its compiled superblocks, so one store path keeps every
tier of cached decoded text coherent.
"""

from __future__ import annotations

from enum import IntFlag
from typing import Callable

PAGE_SIZE = 4096
PAGE_SHIFT = 12
_OFFSET_MASK = PAGE_SIZE - 1
_MASK64 = (1 << 64) - 1
_MASK32 = (1 << 32) - 1

#: ``observer(addr, size)`` — called after bytes in ``[addr, addr+size)``
#: change (one call per page chunk of a spanning write).
WriteObserver = Callable[[int, int], None]


class PageFlags(IntFlag):
    PRESENT = 1
    WRITABLE = 2
    EXECUTABLE = 4
    USER = 8
    GLOBAL = 16
    DIRTY = 32


class PageFault(Exception):
    """Raised on access to an unmapped page or a forbidden write."""

    def __init__(self, addr: int, reason: str) -> None:
        super().__init__(f"page fault at {addr:#x}: {reason}")
        self.addr = addr
        self.reason = reason


class _Page:
    __slots__ = ("data", "flags", "generation")

    def __init__(self, flags: PageFlags) -> None:
        self.data = bytearray(PAGE_SIZE)
        self.flags = flags
        self.generation = 0


class PagedMemory:
    """Sparse 64-bit paged address space.

    ``wp_enabled`` models the CR0.WP bit: while True (the default), writes to
    non-WRITABLE pages fault even from supervisor code.  ABOM clears it
    around a patch and restores it afterwards.
    """

    def __init__(self) -> None:
        self._pages: dict[int, _Page] = {}
        self.wp_enabled = True
        self._write_observers: list[WriteObserver] = []
        self._lock_observers: list[WriteObserver] = []
        #: True while a ``LOCK``-prefixed store (:meth:`compare_exchange`)
        #: is inside :meth:`write`; lets plain write observers skip stores
        #: that a lock observer will report as synchronized.
        self.in_locked_op = False

    # ------------------------------------------------------------------
    # Write observation (decode-cache invalidation hook)
    # ------------------------------------------------------------------
    def add_write_observer(self, observer: WriteObserver) -> None:
        """Call ``observer(addr, size)`` after every store (per page chunk).

        Permission changes notify with page granularity: a re-flagged page
        can gain or lose EXECUTABLE, which cached decodes must observe.
        """
        self._write_observers.append(observer)

    def remove_write_observer(self, observer: WriteObserver) -> None:
        self._write_observers.remove(observer)

    def add_lock_observer(self, observer: WriteObserver) -> None:
        """Call ``observer(addr, size)`` after every *successful*
        ``LOCK``-prefixed store (:meth:`compare_exchange`).  While the
        locked store runs, :attr:`in_locked_op` is True so plain write
        observers can recognize it."""
        self._lock_observers.append(observer)

    def remove_lock_observer(self, observer: WriteObserver) -> None:
        self._lock_observers.remove(observer)

    def _notify(self, addr: int, size: int) -> None:
        for observer in self._write_observers:
            observer(addr, size)

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_region(self, addr: int, size: int, flags: PageFlags) -> None:
        """Map (or re-flag) all pages covering ``[addr, addr + size)``."""
        if size <= 0:
            raise ValueError(f"cannot map region of size {size}")
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        for index in range(first, last + 1):
            page = self._pages.get(index)
            if page is None:
                self._pages[index] = _Page(flags | PageFlags.PRESENT)
            else:
                page.flags = flags | PageFlags.PRESENT
                page.generation += 1
                self._notify(index << PAGE_SHIFT, PAGE_SIZE)

    def is_mapped(self, addr: int) -> bool:
        return (addr >> PAGE_SHIFT) in self._pages

    def page_flags(self, addr: int) -> PageFlags:
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            raise PageFault(addr, "not mapped")
        return page.flags

    def set_page_flags(self, addr: int, flags: PageFlags) -> None:
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            raise PageFault(addr, "not mapped")
        page.flags = flags | PageFlags.PRESENT
        page.generation += 1
        self._notify(addr & ~_OFFSET_MASK, PAGE_SIZE)

    def page_generation(self, addr: int) -> int:
        """Generation counter of the page containing ``addr``."""
        page = self._pages.get(addr >> PAGE_SHIFT)
        if page is None:
            raise PageFault(addr, "not mapped")
        return page.generation

    def page_generation_index(self, index: int) -> int:
        """Generation of page ``index`` (-1 when unmapped) — cache hot path."""
        page = self._pages.get(index)
        return -1 if page is None else page.generation

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def read(self, addr: int, size: int) -> bytes:
        page = self._pages.get(addr >> PAGE_SHIFT)
        offset = addr & _OFFSET_MASK
        if page is not None and offset + size <= PAGE_SIZE:
            return bytes(page.data[offset : offset + size])
        out = bytearray()
        remaining = size
        cursor = addr
        while remaining > 0:
            page = self._pages.get(cursor >> PAGE_SHIFT)
            if page is None:
                raise PageFault(cursor, "read of unmapped page")
            offset = cursor & _OFFSET_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            out += page.data[offset : offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def fetch(self, addr: int, size: int) -> bytes:
        """Read up to ``size`` bytes for *instruction fetch*.

        Unlike :meth:`read` this enforces the EXECUTABLE permission: a
        fetch whose first byte lies on an unmapped or non-executable page
        faults.  The window is truncated (never faults) when its tail runs
        into unmapped or non-executable memory, mirroring how a hardware
        fetch of a shorter instruction would simply never touch the next
        page.
        """
        out = b""
        cursor = addr
        remaining = size
        while remaining > 0:
            page = self._pages.get(cursor >> PAGE_SHIFT)
            if page is None or not page.flags & PageFlags.EXECUTABLE:
                if cursor == addr:
                    reason = (
                        "instruction fetch from unmapped page"
                        if page is None
                        else "instruction fetch from non-executable page"
                    )
                    raise PageFault(addr, reason)
                break
            offset = cursor & _OFFSET_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            piece = bytes(page.data[offset : offset + chunk])
            out = piece if cursor == addr else out + piece
            cursor += chunk
            remaining -= chunk
        return out

    def write(self, addr: int, data: bytes) -> None:
        remaining = memoryview(data)
        cursor = addr
        while remaining:
            page = self._pages.get(cursor >> PAGE_SHIFT)
            if page is None:
                raise PageFault(cursor, "write to unmapped page")
            if self.wp_enabled and not page.flags & PageFlags.WRITABLE:
                raise PageFault(cursor, "write to read-only page")
            offset = cursor & _OFFSET_MASK
            chunk = min(len(remaining), PAGE_SIZE - offset)
            page.data[offset : offset + chunk] = remaining[:chunk]
            page.generation += 1
            if not page.flags & PageFlags.WRITABLE:
                # Supervisor write with WP disabled: hardware still records
                # the store in the dirty bit (§4.4).
                page.flags |= PageFlags.DIRTY
            # Notify per chunk, not after the loop: a spanning write that
            # faults on a later page must still invalidate what it wrote.
            if self._write_observers:
                self._notify(cursor, chunk)
            cursor += chunk
            remaining = remaining[chunk:]

    def _write_single(self, addr: int, page: _Page, data: bytes) -> None:
        """Store ``data`` entirely inside ``page`` (permissions pre-checked)."""
        offset = addr & _OFFSET_MASK
        page.data[offset : offset + len(data)] = data
        page.generation += 1
        if not page.flags & PageFlags.WRITABLE:
            page.flags |= PageFlags.DIRTY
        if self._write_observers:
            self._notify(addr, len(data))

    def read_u64(self, addr: int) -> int:
        page = self._pages.get(addr >> PAGE_SHIFT)
        offset = addr & _OFFSET_MASK
        if page is not None and offset <= PAGE_SIZE - 8:
            return int.from_bytes(page.data[offset : offset + 8], "little")
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        page = self._pages.get(addr >> PAGE_SHIFT)
        if (
            page is not None
            and (addr & _OFFSET_MASK) <= PAGE_SIZE - 8
            and (page.flags & PageFlags.WRITABLE or not self.wp_enabled)
        ):
            self._write_single(addr, page, (value & _MASK64).to_bytes(8, "little"))
            return
        self.write(addr, (value & _MASK64).to_bytes(8, "little"))

    def read_u32(self, addr: int) -> int:
        page = self._pages.get(addr >> PAGE_SHIFT)
        offset = addr & _OFFSET_MASK
        if page is not None and offset <= PAGE_SIZE - 4:
            return int.from_bytes(page.data[offset : offset + 4], "little")
        return int.from_bytes(self.read(addr, 4), "little")

    def write_u32(self, addr: int, value: int) -> None:
        page = self._pages.get(addr >> PAGE_SHIFT)
        if (
            page is not None
            and (addr & _OFFSET_MASK) <= PAGE_SIZE - 4
            and (page.flags & PageFlags.WRITABLE or not self.wp_enabled)
        ):
            self._write_single(addr, page, (value & _MASK32).to_bytes(4, "little"))
            return
        self.write(addr, (value & _MASK32).to_bytes(4, "little"))

    # ------------------------------------------------------------------
    # Atomic compare-exchange (the patcher's only write primitive)
    # ------------------------------------------------------------------
    def compare_exchange(self, addr: int, expected: bytes, new: bytes) -> bool:
        """Atomically replace ``expected`` with ``new`` at ``addr``.

        Models the ``cmpxchg``-based patching of §4.4: at most eight bytes,
        and the store happens only if the current contents still equal
        ``expected``.  Returns True on success.  Respects ``wp_enabled``
        exactly like :meth:`write`.
        """
        if len(expected) != len(new):
            raise ValueError("compare_exchange operand sizes differ")
        if not 1 <= len(new) <= 8:
            raise ValueError(
                f"cmpxchg can exchange 1..8 bytes, not {len(new)}"
            )
        current = self.read(addr, len(expected))
        if current != expected:
            return False
        if self._lock_observers:
            self.in_locked_op = True
            try:
                self.write(addr, new)
            finally:
                self.in_locked_op = False
            for observer in self._lock_observers:
                observer(addr, len(new))
        else:
            self.write(addr, new)
        return True

    def dirty_pages(self) -> list[int]:
        """Page-aligned addresses of all pages with the DIRTY bit set."""
        return sorted(
            index << PAGE_SHIFT
            for index, page in self._pages.items()
            if page.flags & PageFlags.DIRTY
        )
