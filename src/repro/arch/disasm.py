"""Linear disassembler over the instruction subset.

Formats machine code the way the paper's Figure 2 presents it
(``address: bytes  mnemonic operands``), with AT&T-flavoured operand
rendering for the forms the patterns use.  Used by the inspector example
and handy when debugging ABOM patches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.encoding import Instruction, InvalidOpcode, decode
from repro.arch.memory import PagedMemory
from repro.arch.registers import Reg

_REG64 = {r: f"%r{r.name[1:].lower()}" if r.name.startswith("R") and
          r.name[1:].isdigit() else f"%{r.name.lower()}" for r in Reg}
_REG32 = {
    Reg.RAX: "%eax", Reg.RCX: "%ecx", Reg.RDX: "%edx", Reg.RBX: "%ebx",
    Reg.RSP: "%esp", Reg.RBP: "%ebp", Reg.RSI: "%esi", Reg.RDI: "%edi",
}


@dataclass
class DisasmLine:
    addr: int
    raw: bytes
    text: str

    def __str__(self) -> str:
        return f"{self.addr:8x}:\t{self.raw.hex(' '):24s}\t{self.text}"


def _render(instr: Instruction, addr: int) -> str:
    name = instr.mnemonic
    ops = instr.operands
    if name == "mov_r32_imm32":
        return f"mov    ${ops[1]:#x},{_REG32.get(ops[0], '%e?')}"
    if name == "mov_r64_imm32":
        return f"mov    ${ops[1]:#x},{_REG64[ops[0]]}"
    if name == "syscall":
        return "syscall"
    if name == "call_abs_ind":
        return f"callq  *{ops[0]:#x}"
    if name == "call_rel32":
        return f"call   {addr + instr.length + ops[0]:#x}"
    if name in ("jmp_rel8", "jmp_rel32"):
        return f"jmp    {addr + instr.length + ops[0]:#x}"
    if name in ("je_rel8", "jne_rel8", "jl_rel8", "jg_rel8"):
        cond = name.split("_")[0]
        return f"{cond:6s} {addr + instr.length + ops[0]:#x}"
    if name == "ret":
        return "retq"
    if name == "nop":
        return "nop"
    if name == "hlt":
        return "hlt"
    if name == "int3":
        return "int3"
    if name == "push_r64":
        return f"push   {_REG64[ops[0]]}"
    if name == "pop_r64":
        return f"pop    {_REG64[ops[0]]}"
    if name == "mov_r64_r64":
        return f"mov    {_REG64[ops[1]]},{_REG64[ops[0]]}"
    if name == "mov_r32_r32":
        return f"mov    {_REG32.get(ops[1], '?')},{_REG32.get(ops[0], '?')}"
    if name == "mov_r32_rsp_disp8":
        return f"mov    {ops[1]:#x}(%rsp),{_REG32.get(ops[0], '?')}"
    if name == "mov_r64_rsp_disp8":
        return f"mov    {ops[1]:#x}(%rsp),{_REG64[ops[0]]}"
    if name == "mov_rsp_disp8_r32":
        return f"mov    {_REG32.get(ops[1], '?')},{ops[0]:#x}(%rsp)"
    if name == "mov_rsp_disp8_r64":
        return f"mov    {_REG64[ops[1]]},{ops[0]:#x}(%rsp)"
    if name == "add_r64_imm8":
        return f"add    ${ops[1]:#x},{_REG64[ops[0]]}"
    if name == "sub_r64_imm8":
        return f"sub    ${ops[1]:#x},{_REG64[ops[0]]}"
    if name == "cmp_r64_imm8":
        return f"cmp    ${ops[1]:#x},{_REG64[ops[0]]}"
    if name == "inc_r64":
        return f"inc    {_REG64[ops[0]]}"
    if name == "dec_r64":
        return f"dec    {_REG64[ops[0]]}"
    if name in ("xor_r32_r32", "xor_r64_r64"):
        table = _REG32 if name == "xor_r32_r32" else _REG64
        return f"xor    {table.get(ops[1], '?')},{table.get(ops[0], '?')}"
    return str(instr)


def disassemble(data: bytes, base: int = 0) -> list[DisasmLine]:
    """Disassemble ``data`` linearly; undecodable bytes become one-byte
    ``.byte 0x..`` lines, resyncing at the next decodable offset (e.g. the
    ``0x60`` tail of a patched call, or data embedded in text)."""
    lines = []
    cursor = 0
    while cursor < len(data):
        addr = base + cursor
        try:
            instr = decode(data, cursor)
        except InvalidOpcode:
            lines.append(
                DisasmLine(
                    addr,
                    data[cursor : cursor + 1],
                    f".byte {data[cursor]:#04x}",
                )
            )
            cursor += 1
            continue
        lines.append(
            DisasmLine(addr, data[cursor : cursor + instr.length],
                       _render(instr, addr))
        )
        cursor += instr.length
    return lines


def disassemble_memory(
    memory: PagedMemory, addr: int, size: int
) -> list[DisasmLine]:
    return disassemble(memory.read(addr, size), base=addr)


def format_listing(lines: list[DisasmLine]) -> str:
    return "\n".join(str(line) for line in lines)
