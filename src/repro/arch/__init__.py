"""Byte-accurate x86-64 subset substrate.

The paper's Automatic Binary Optimization Module (ABOM, §4.4) is a byte-level
rewriter: it recognizes ``mov``+``syscall`` encodings, overwrites them with
``callq *abs32`` using ≤8-byte atomic compare-exchange, and relies on an
invalid-opcode fixup for jumps into the middle of a patch.  Reproducing it
faithfully requires real machine code, so this package provides:

* :mod:`repro.arch.registers` — the x86-64 integer register file;
* :mod:`repro.arch.memory` — 4 KiB-paged memory with permission bits;
* :mod:`repro.arch.encoding` — encoder/decoder for the instruction subset;
* :mod:`repro.arch.assembler` — a two-pass mini assembler with labels;
* :mod:`repro.arch.cpu` — an interpreter with traps and native-stub hooks;
* :mod:`repro.arch.tracecache` — trace-compiled superblocks over the icache;
* :mod:`repro.arch.binary` — program images with syscall-site metadata.
"""

from repro.arch.registers import Reg, RegisterFile
from repro.arch.memory import PagedMemory, PageFlags, PageFault
from repro.arch.encoding import Instruction, decode, InvalidOpcode
from repro.arch.assembler import Assembler
from repro.arch.cpu import CPU, ICacheStats, Trap, TrapKind, CpuHalted
from repro.arch.tracecache import TraceCache, TraceStats
from repro.arch.binary import Binary, SyscallSite, SitePattern
from repro.arch.disasm import disassemble, disassemble_memory, format_listing

__all__ = [
    "Reg",
    "RegisterFile",
    "PagedMemory",
    "PageFlags",
    "PageFault",
    "Instruction",
    "decode",
    "InvalidOpcode",
    "Assembler",
    "CPU",
    "ICacheStats",
    "TraceCache",
    "TraceStats",
    "Trap",
    "TrapKind",
    "CpuHalted",
    "Binary",
    "SyscallSite",
    "SitePattern",
    "disassemble",
    "disassemble_memory",
    "format_listing",
]
