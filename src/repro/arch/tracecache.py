"""Trace-compiled superblocks over the basic-block decode cache.

The decode cache (``docs/interpreter_performance.md``) removed the
decoder from the hot path but still pays a dict lookup, a tuple unpack,
and a handler call *per instruction*.  This module removes the dispatch
itself: block-entry counts are profiled in the icache hit path, and when
a head crosses :data:`HOT_THRESHOLD` the chain of blocks it leads into
is stitched into a **superblock** and compiled — with Python's own
``compile()`` — into one specialized function:

* handler dispatch is gone — each instruction becomes one or two
  generated statements with its decoded operands folded in as literals;
* the register file is lowered to locals (only registers the trace
  touches are loaded/spilled);
* the single-page ``read/write_u32/u64`` fast paths are inlined;
* chains that close back on their head become ``while True:`` loops, so
  a 2000-iteration guest loop is one host-level call.

Correctness is guard-based, exactly like a hardware trace cache:

* **branch guards** — each conditional branch is compiled in its
  profiled direction; the other direction spills the locals and exits at
  the architecturally exact RIP;
* **value guards** — indirect calls check the vsyscall slot still holds
  the compile-time target; guarded returns check the popped address;
* **page-generation guards** — every execution validates the generation
  stamps of all pages the trace was compiled from (the same counters the
  icache stamps blocks with), so NX flips and foreign writes are caught
  at entry;
* **liveness guards** — the write-observer protocol that evicts icache
  blocks also flips the trace's ``live`` cell; compiled code re-checks
  it after stores and native-stub calls, so an ABOM §4.4 ``cmpxchg``
  patch landing *mid-trace* (from a trap taken inside the trace, or a
  racing vCPU between quanta) aborts to the interpreter before any
  stale instruction runs.

A trace never contains ``syscall``/``int3``/``hlt`` — those always exit
to the interpreter, which owns trap delivery.  Instruction accounting
and simulated-clock charging are synchronized before every native-stub
call and at every exit, so counters and timestamps observable from
Python (stubs, trap handlers) match interpreted execution exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.arch.memory import PAGE_SHIFT, PageFault
from repro.arch.encoding import InvalidOpcode

if TYPE_CHECKING:  # pragma: no cover
    from repro.arch.cpu import CPU, Trap

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1
SIGN64 = 1 << 63

#: Block-entry count at which a head is considered hot and compiled.
#: Module-level so tests can lower it; sized so short diagnostic runs
#: (the obs demo, the SMC suites) stay trace-free and byte-stable.
HOT_THRESHOLD = 50
#: Hard ceilings on superblock size.
MAX_TRACE_OPS = 256
MAX_TRACE_BLOCKS = 32
#: Linear (non-looping) traces shorter than this lose to the icache.
MIN_LINEAR_OPS = 8

#: Generated-source → compiled code object.  Keyed by the exact source,
#: so identical programs (fresh CPUs over the same text, benchmark
#: rounds) share one ``compile()`` cost process-wide.
_CODE_MEMO: dict[str, object] = {}


@dataclass
class TraceStats:
    """Trace-cache counters (wired into ``repro.obs`` as
    ``arch_trace_*``).

    ``compiles`` counts installed traces, ``aborts`` chains rejected by
    the recorder, ``executions`` entries into compiled code,
    ``instructions`` instructions retired inside traces, ``guard_exits``
    bail-outs through any guard (branch direction, slot/return value,
    SMC liveness), and ``invalidations`` traces evicted by stores or
    page-generation mismatches.  ``code_bytes`` is a gauge: generated
    source bytes currently live.
    """

    compiles: int = 0
    aborts: int = 0
    executions: int = 0
    instructions: int = 0
    guard_exits: int = 0
    invalidations: int = 0
    code_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "compiles": self.compiles,
            "aborts": self.aborts,
            "executions": self.executions,
            "instructions": self.instructions,
            "guard_exits": self.guard_exits,
            "invalidations": self.invalidations,
            "code_bytes": self.code_bytes,
        }


class CompiledTrace:
    """One installed superblock: the generated function plus the
    metadata needed to guard and evict it."""

    __slots__ = ("head", "fn", "pages", "live", "ops", "blocks", "code_size", "loop")

    def __init__(self, head, fn, pages, live, ops, blocks, code_size, loop):
        self.head = head
        self.fn = fn
        #: ``(page_index, generation)`` stamps validated on every entry.
        self.pages = pages
        #: One-cell list shared with the generated code; ``[False]``
        #: after eviction, checked mid-trace after stores and stubs.
        self.live = live
        self.ops = ops
        self.blocks = blocks
        self.code_size = code_size
        self.loop = loop


class _Abort(Exception):
    """Recorder bail-out: the chain is not worth (or not safe) compiling."""


# ----------------------------------------------------------------------
# Recorder: stitch hot block chains into a superblock plan
# ----------------------------------------------------------------------

#: mnemonic -> (registers read/written, flags defined) used for local
#: lowering and dead-flag elimination.
_JCC_USES = {
    "je_rel8": ("zf",),
    "jne_rel8": ("zf",),
    "jl_rel8": ("sf",),
    "jg_rel8": ("zf", "sf"),
}
_FLAG_DEFS = {
    "add_r64_imm8": ("zf", "sf"),
    "sub_r64_imm8": ("zf", "sf"),
    "inc_r64": ("zf", "sf"),
    "dec_r64": ("zf", "sf"),
    "xor_r32_r32": ("zf", "sf"),
    "xor_r64_r64": ("zf", "sf"),
    "cmp_r64_imm8": ("zf", "sf", "cf"),
}
#: Steps whose generated code can spill on a fault or exit: any flag is
#: observable there, so upstream definitions must not be eliminated.
_MEM_OPS = {
    "mov_r32_rsp_disp8",
    "mov_r64_rsp_disp8",
    "mov_rsp_disp8_r32",
    "mov_rsp_disp8_r64",
    "push_r64",
    "pop_r64",
}


class TraceCache:
    """Per-vCPU trace cache: profiler, recorder, codegen, guards."""

    def __init__(self, cpu: "CPU", stats: Optional[TraceStats] = None) -> None:
        self.cpu = cpu
        self.hot_threshold = HOT_THRESHOLD
        self.stats = stats if stats is not None else TraceStats()
        #: head rip -> :class:`CompiledTrace`.
        self.traces: dict[int, CompiledTrace] = {}
        #: block-entry profile (head rip -> count).
        self.counts: dict[int, int] = {}
        #: heads whose chains were rejected; cleared when text changes.
        self.failed: set[int] = set()
        #: page index -> head rips of traces compiled from that page.
        self.page_traces: dict[int, set[int]] = {}
        #: optional :class:`repro.perf.trace.Tracer` for compile spans.
        self.tracer = None

    # -- profiling -----------------------------------------------------
    def note_block(self, rip: int) -> None:
        """Called by the CPU on every block entry (icache hit or fill)."""
        counts = self.counts
        count = counts.get(rip, 0) + 1
        counts[rip] = count
        if (
            count >= self.hot_threshold
            and rip not in self.traces
            and rip not in self.failed
        ):
            self._compile(rip)

    # -- execution -----------------------------------------------------
    def execute(self, rip: int, fuel: int) -> int:
        """Run the trace at ``rip`` if one is installed and still valid.

        Returns instructions retired (0 = no trace ran; the caller must
        fall back to :meth:`CPU.step` to guarantee progress).
        """
        trace = self.traces.get(rip)
        if trace is None:
            return 0
        generation_of = self.cpu.mem.page_generation_index
        for index, stamp in trace.pages:
            if generation_of(index) != stamp:
                self._evict(trace)
                self.stats.invalidations += 1
                return 0
        self.stats.executions += 1
        retired = trace.fn(self.cpu, fuel)
        self.stats.instructions += retired
        return retired

    # -- invalidation (the icache's SMC protocol, extended) ------------
    def invalidate_range(self, first_page: int, last_page: int) -> None:
        """Write-observer hook: evict traces compiled from written pages.

        Also clears the failed-head blacklist when the write touched any
        known text page — an ABOM patch can turn an untraceable chain
        (one ending in ``syscall``) into a traceable one (ending in a
        patched ``call``), so rejected heads get a fresh look.
        """
        text_written = False
        page_traces = self.page_traces
        cpu_text = self.cpu._page_blocks
        for index in range(first_page, last_page + 1):
            if index in cpu_text:
                text_written = True
            heads = page_traces.get(index)
            if not heads:
                continue
            text_written = True
            for head in list(heads):
                trace = self.traces.get(head)
                if trace is not None:
                    self._evict(trace)
                    self.stats.invalidations += 1
        if text_written and self.failed:
            self.failed.clear()

    def flush(self) -> None:
        """Drop every trace (counters and the hotness profile persist)."""
        for trace in list(self.traces.values()):
            trace.live[0] = False
        self.traces.clear()
        self.page_traces.clear()
        self.failed.clear()
        self.stats.code_bytes = 0

    def _evict(self, trace: CompiledTrace) -> None:
        trace.live[0] = False
        if self.traces.get(trace.head) is trace:
            del self.traces[trace.head]
        self.stats.code_bytes -= trace.code_size
        for index, _ in trace.pages:
            heads = self.page_traces.get(index)
            if heads is not None:
                heads.discard(trace.head)
                if not heads:
                    del self.page_traces[index]

    # -- recording -----------------------------------------------------
    def _compile(self, head: int) -> None:
        from repro.arch.cpu import Trap  # local: avoid import cycle

        try:
            steps, loop, retire_total, page_indexes = self._record(head, Trap)
            source = _generate(self.cpu, head, steps, loop, retire_total)
        except _Abort:
            self.failed.add(head)
            self.stats.aborts += 1
            return
        code = _CODE_MEMO.get(source)
        if code is None:
            code = compile(source, f"<trace {head:#x}>", "exec")
            _CODE_MEMO[source] = code
        live = [True]
        namespace = {
            "PageFault": PageFault,
            "M": MASK64,
            "S": SIGN64,
            "_LIVE": live,
            "_STATS": self.stats,
        }
        exec(code, namespace)
        generation_of = self.cpu.mem.page_generation_index
        pages = tuple(
            (index, generation_of(index)) for index in sorted(page_indexes)
        )
        trace = CompiledTrace(
            head=head,
            fn=namespace["__trace__"],
            pages=pages,
            live=live,
            ops=retire_total,
            blocks=len(page_indexes),
            code_size=len(source),
            loop=loop,
        )
        self.traces[head] = trace
        for index, _ in pages:
            self.page_traces.setdefault(index, set()).add(head)
        self.stats.compiles += 1
        self.stats.code_bytes += len(source)
        if self.tracer is not None:
            self.tracer.emit(
                "trace_compile",
                "compile",
                head=f"{head:#x}",
                ops=retire_total,
                loop=loop,
                code_bytes=len(source),
            )

    def _record(self, head: int, Trap) -> tuple[list, bool, int, set[int]]:
        """Follow the hot chain from ``head``; returns (steps, loop, cost).

        Step records (first two fields are always kind and address):

        * ``("op", addr, mnemonic, operands, next_rip)``
        * ``("cc", addr, mnemonic, taken_target, next_rip, predicted_taken)``
        * ``("jmp", addr, target)``
        * ``("call", addr, next_rip, target)`` — ``call rel32``, followed
        * ``("call_ind", addr, slot, next_rip, target)`` — followed with
          a slot-value guard
        * ``("stub_call", addr, slot, next_rip, target, resume)`` —
          ``call *slot`` whose target is a native stub, invoked inline
          (retires 2); ``resume`` folds in the LibOS dead-tail skip
        * ``("ret_guard", addr, expected)`` — return to a followed call
        * ``("ret_exit", addr)`` — dynamic return, ends the trace
        * ``("exit", addr)`` — exit *before* ``addr`` (syscall/int3/hlt,
          unmapped code, size cap); retires nothing
        """
        cpu = self.cpu
        mem = cpu.mem
        counts = self.counts
        steps: list[tuple] = []
        call_stack: list[int] = []
        visited: set[int] = set()
        page_indexes: set[int] = set()
        retired = 0
        loop = False
        cur = head
        while True:
            if steps and cur == head and not call_stack:
                loop = True
                break
            if (
                cur in visited
                or cur in cpu.native_stubs
                or retired >= MAX_TRACE_OPS
                or len(visited) >= MAX_TRACE_BLOCKS
            ):
                steps.append(("exit", cur))
                break
            visited.add(cur)
            block = cpu._blocks.get(cur)
            if block is None or not block.live:
                try:
                    block = cpu._fill_block(cur)
                except (Trap, InvalidOpcode, PageFault):
                    steps.append(("exit", cur))
                    break
            page_indexes.update(index for index, _ in block.pages)
            transferred = False
            ended = False
            for addr, _handler, instr, next_rip in block.ops:
                mnemonic = instr.mnemonic
                if mnemonic in ("syscall", "int3", "hlt"):
                    steps.append(("exit", addr))
                    ended = True
                    break
                if mnemonic == "ret":
                    retired += 1
                    if call_stack:
                        expected = call_stack.pop()
                        steps.append(("ret_guard", addr, expected))
                        cur = expected
                        transferred = True
                    else:
                        steps.append(("ret_exit", addr))
                        ended = True
                    break
                if mnemonic == "call_rel32":
                    (rel,) = instr.operands
                    target = (next_rip + rel) & MASK64
                    call_stack.append(next_rip)
                    steps.append(("call", addr, next_rip, target))
                    retired += 1
                    cur = target
                    transferred = True
                    break
                if mnemonic == "call_abs_ind":
                    (slot,) = instr.operands
                    try:
                        target = mem.read_u64(slot)
                    except PageFault:
                        steps.append(("exit", addr))
                        ended = True
                        break
                    if target in cpu.native_stubs:
                        # The X-LibOS return-address protocol (§4.4) skips
                        # a dead ``syscall``/``jmp -9`` tail at the return
                        # address.  The skip is a pure function of those
                        # two bytes, which our page stamps pin — so the
                        # recorder can predict the resume point exactly.
                        resume = next_rip
                        try:
                            tail = mem.read(next_rip, 2)
                            if tail in (b"\x0f\x05", b"\xeb\xf7"):
                                resume = next_rip + 2
                        except PageFault:
                            pass
                        steps.append(
                            ("stub_call", addr, slot, next_rip, target, resume)
                        )
                        retired += 2  # the call and the stub step
                        cur = resume
                    else:
                        call_stack.append(next_rip)
                        steps.append(("call_ind", addr, slot, next_rip, target))
                        retired += 1
                        cur = target
                    transferred = True
                    break
                if mnemonic in ("jmp_rel8", "jmp_rel32"):
                    (rel,) = instr.operands
                    target = (next_rip + rel) & MASK64
                    steps.append(("jmp", addr, target))
                    retired += 1
                    cur = target
                    transferred = True
                    break
                if mnemonic in _JCC_USES:
                    (rel,) = instr.operands
                    taken = (next_rip + rel) & MASK64
                    if taken == head:
                        predicted = True
                    elif next_rip == head:
                        predicted = False
                    else:
                        predicted = counts.get(taken, 0) >= counts.get(next_rip, 0)
                    steps.append(("cc", addr, mnemonic, taken, next_rip, predicted))
                    retired += 1
                    cur = taken if predicted else next_rip
                    transferred = True
                    break
                steps.append(("op", addr, mnemonic, instr.operands, next_rip))
                retired += 1
            if ended:
                break
            if not transferred:
                # Block ended without a control transfer (page boundary,
                # decode split): fall through to the next address.
                cur = block.ops[-1][3] if block.ops else cur
                if not block.ops:
                    steps.append(("exit", cur))
                    break
        if retired == 0:
            raise _Abort
        if not loop and retired < MIN_LINEAR_OPS:
            raise _Abort
        return steps, loop, retired, page_indexes


# ----------------------------------------------------------------------
# Code generation
# ----------------------------------------------------------------------
def _regs_of(step) -> tuple[int, ...]:
    kind = step[0]
    if kind == "op":
        mnemonic, operands = step[2], step[3]
        if mnemonic == "nop":
            return ()
        if mnemonic in (
            "mov_r32_rsp_disp8",
            "mov_r64_rsp_disp8",
        ):
            return (int(operands[0]), 4)
        if mnemonic in ("mov_rsp_disp8_r32", "mov_rsp_disp8_r64"):
            return (int(operands[1]), 4)
        if mnemonic in ("push_r64", "pop_r64"):
            return (int(operands[0]), 4)
        if mnemonic in ("mov_r64_r64", "mov_r32_r32", "xor_r32_r32", "xor_r64_r64"):
            return (int(operands[0]), int(operands[1]))
        return (int(operands[0]),)
    if kind in ("call", "call_ind", "stub_call", "ret_guard", "ret_exit"):
        return (4,)
    return ()


def _flag_live_after(steps, index, flag, loop) -> bool:
    """Is the flag defined at ``steps[index]`` observable downstream?"""
    scan = list(range(index + 1, len(steps)))
    if loop:
        # The loop-top fuel/liveness exit spills every tracked flag.
        scan += [-1] + list(range(0, index + 1))
    for j in scan:
        if j == -1:
            return True
        step = steps[j]
        kind = step[0]
        if kind == "op":
            mnemonic = step[2]
            if mnemonic in _MEM_OPS:
                return True  # fault spill observes flags
            defs = _FLAG_DEFS.get(mnemonic, ())
            if flag in defs:
                return False
            continue
        if kind == "jmp":
            continue  # pure transition, no flag effects
        if kind == "cc":
            return True  # reads flags and/or spills on its guard exit
        return True  # calls, rets, stubs, exits all spill
    return True  # linear trace end spills


class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.pending = 0  # instructions retired since the last `n +=`

    def emit(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)


def _generate(cpu, head, steps, loop, retire_total) -> str:
    """Generate the trace function source for ``steps``."""
    tracked: set[int] = set()
    flags: set[str] = set()
    has_mem = False
    has_stub = any(s[0] == "stub_call" for s in steps)
    has_store = any(
        s[0] == "op" and s[2] in ("mov_rsp_disp8_r32", "mov_rsp_disp8_r64", "push_r64")
        for s in steps
    ) or any(s[0] in ("call", "call_ind", "stub_call") for s in steps)
    for step in steps:
        tracked.update(_regs_of(step))
        kind = step[0]
        if kind == "op":
            flags.update(_FLAG_DEFS.get(step[2], ()))
            if step[2] in _MEM_OPS:
                has_mem = True
        elif kind == "cc":
            flags.update(_JCC_USES[step[2]])
        if kind in ("call", "call_ind", "stub_call", "ret_guard", "ret_exit"):
            has_mem = True
    charge = cpu.clock is not None and bool(cpu.instruction_ns)
    ns = repr(float(cpu.instruction_ns))
    regs = sorted(tracked)
    flag_list = [f for f in ("zf", "sf", "cf") if f in flags]
    # Mid-trace invalidation is only possible when the trace itself can
    # trigger a write or run foreign Python (a stub).
    live_check = has_store or has_stub

    def spill_lines() -> list[str]:
        out = [f"R[{r}] = r{r}" for r in regs]
        out += [f"regs.{f} = {f}" for f in flag_list]
        return out

    def reload_lines() -> list[str]:
        out = [f"r{r} = R[{r}]" for r in regs]
        out += [f"{f} = regs.{f}" for f in flag_list]
        return out

    def flush_lines(delta_expr: str = "n - _sy") -> list[str]:
        """Sync retired count + clock with the interpreter's view."""
        if has_stub:
            out = [f"cpu.instructions_retired += {delta_expr}"]
            if charge:
                out.append(f"_adv(({delta_expr}) * {ns})")
            return out
        out = ["cpu.instructions_retired += n"]
        if charge:
            out.append(f"_adv(n * {ns})")
        return out

    def exit_lines(pending, rip_expr, guard) -> list[str]:
        out = []
        if pending:
            out.append(f"n += {pending}")
        out += flush_lines()
        out += spill_lines()
        out.append(f"regs.rip = {rip_expr}")
        if guard:
            out.append("_STATS.guard_exits += 1")
        out.append("return n")
        return out

    def fault_lines(pending, addr) -> list[str]:
        out = []
        if pending:
            out.append(f"n += {pending}")
        out += flush_lines()
        out += spill_lines()
        out.append(f"regs.rip = {addr:#x}")
        out.append("raise")
        return out

    em = _Emitter()
    em.emit(0, "def __trace__(cpu, fuel):")
    em.emit(1, "regs = cpu.regs")
    em.emit(1, "R = regs._regs")
    em.emit(1, "n = 0")
    if has_stub:
        em.emit(1, "_sy = 0")
    em.emit(1, "_M = M")
    if any(s[0] == "op" and s[2] in _FLAG_DEFS for s in steps):
        em.emit(1, "_S = S")
    if has_mem:
        em.emit(1, "_mem = cpu.mem")
        em.emit(1, "_pget = _mem._pages.get")
        em.emit(1, "_obs = _mem._write_observers")
        em.emit(1, "_notify = _mem._notify")
        em.emit(1, "_r64 = _mem.read_u64")
        em.emit(1, "_w64 = _mem.write_u64")
        em.emit(1, "_r32 = _mem.read_u32")
        em.emit(1, "_w32 = _mem.write_u32")
        em.emit(1, "_ifb = int.from_bytes")
    if has_stub:
        em.emit(1, "_stubs_get = cpu.native_stubs.get")
    if live_check:
        em.emit(1, "_L = _LIVE")
    if charge:
        em.emit(1, "_adv = cpu.clock.advance")
    for r in regs:
        em.emit(1, f"r{r} = R[{r}]")
    for f in flag_list:
        em.emit(1, f"{f} = regs.{f}")

    if loop:
        em.emit(1, f"_lim = fuel - {retire_total}")
        em.emit(1, "while True:")
        base = 2
        top_cond = "n > _lim or not _L[0]" if live_check else "n > _lim"
        em.emit(base, f"if {top_cond}:")
        for line in exit_lines(0, f"{head:#x}", guard=False):
            em.emit(base + 1, line)
    else:
        em.emit(1, f"if fuel < {retire_total}:")
        em.emit(2, "return 0")
        base = 1

    def emit_read(ind, dst, addr_var, width):
        limit = 4096 - width
        em.emit(ind, f"_pg = _pget({addr_var} >> 12)")
        em.emit(ind, f"_o = {addr_var} & 4095")
        em.emit(ind, f"if _pg is not None and _o <= {limit}:")
        em.emit(
            ind + 1,
            f"{dst} = _ifb(_pg.data[_o:_o + {width}], 'little')",
        )
        em.emit(ind, "else:")
        em.emit(ind + 1, f"{dst} = _r{width * 8}({addr_var})")

    def emit_write(ind, addr_var, val_expr, width):
        limit = 4096 - width
        em.emit(ind, f"_pg = _pget({addr_var} >> 12)")
        em.emit(ind, f"_o = {addr_var} & 4095")
        em.emit(ind, f"if _pg is not None and _o <= {limit} and _pg.flags & 2:")
        em.emit(
            ind + 1,
            f"_pg.data[_o:_o + {width}] = ({val_expr}).to_bytes({width}, 'little')",
        )
        em.emit(ind + 1, "_pg.generation += 1")
        em.emit(ind + 1, "if _obs:")
        em.emit(ind + 2, f"_notify({addr_var}, {width})")
        em.emit(ind, "else:")
        em.emit(ind + 1, f"_w{width * 8}({addr_var}, {val_expr})")

    def emit_fault_guarded(ind, body, pending, addr):
        em.emit(ind, "try:")
        body(ind + 1)
        em.emit(ind, "except PageFault:")
        for line in fault_lines(pending, addr):
            em.emit(ind + 1, line)

    def emit_live_bail(ind, next_addr, pending_after):
        """After a store: if the store hit our own text, stop here."""
        em.emit(ind, "if not _L[0]:")
        for line in exit_lines(pending_after, f"{next_addr:#x}", guard=True):
            em.emit(ind + 1, line)

    for index, step in enumerate(steps):
        kind = step[0]
        if kind == "op":
            _, addr, mnemonic, operands, next_rip = step
            defs = _FLAG_DEFS.get(mnemonic, ())
            emit_flags = {
                f: _flag_live_after(steps, index, f, loop) for f in defs
            }
            if mnemonic == "nop":
                pass
            elif mnemonic == "mov_r32_imm32":
                reg, imm = operands
                em.emit(base, f"r{int(reg)} = {imm & MASK32:#x}")
            elif mnemonic == "mov_r64_imm32":
                reg, imm = operands
                em.emit(base, f"r{int(reg)} = {imm & MASK64:#x}")
            elif mnemonic == "mov_r64_r64":
                dst, src = operands
                em.emit(base, f"r{int(dst)} = r{int(src)}")
            elif mnemonic == "mov_r32_r32":
                dst, src = operands
                em.emit(base, f"r{int(dst)} = r{int(src)} & 0xffffffff")
            elif mnemonic in ("add_r64_imm8", "sub_r64_imm8", "inc_r64", "dec_r64"):
                reg = int(operands[0])
                if mnemonic == "add_r64_imm8":
                    expr = f"(r{reg} + {operands[1]}) & _M"
                elif mnemonic == "sub_r64_imm8":
                    expr = f"(r{reg} - {operands[1]}) & _M"
                elif mnemonic == "inc_r64":
                    expr = f"(r{reg} + 1) & _M"
                else:
                    expr = f"(r{reg} - 1) & _M"
                em.emit(base, f"r{reg} = {expr}")
                if emit_flags.get("zf"):
                    em.emit(base, f"zf = r{reg} == 0")
                if emit_flags.get("sf"):
                    em.emit(base, f"sf = r{reg} >= _S")
            elif mnemonic == "cmp_r64_imm8":
                reg, imm = int(operands[0]), operands[1]
                em.emit(base, f"_t = (r{reg} - {imm}) & _M")
                if emit_flags.get("zf"):
                    em.emit(base, "zf = _t == 0")
                if emit_flags.get("sf"):
                    em.emit(base, "sf = _t >= _S")
                if emit_flags.get("cf"):
                    em.emit(base, f"cf = r{reg} < {imm & MASK64:#x}")
            elif mnemonic in ("xor_r32_r32", "xor_r64_r64"):
                dst, src = int(operands[0]), int(operands[1])
                if dst == src:
                    em.emit(base, f"r{dst} = 0")
                    if emit_flags.get("zf"):
                        em.emit(base, "zf = True")
                    if emit_flags.get("sf"):
                        em.emit(base, "sf = False")
                elif mnemonic == "xor_r32_r32":
                    em.emit(
                        base,
                        f"r{dst} = (r{dst} ^ r{src}) & 0xffffffff",
                    )
                    if emit_flags.get("zf"):
                        em.emit(base, f"zf = r{dst} == 0")
                    if emit_flags.get("sf"):
                        em.emit(base, "sf = False")
                else:
                    em.emit(base, f"r{dst} = r{dst} ^ r{src}")
                    if emit_flags.get("zf"):
                        em.emit(base, f"zf = r{dst} == 0")
                    if emit_flags.get("sf"):
                        em.emit(base, f"sf = r{dst} >= _S")
            elif mnemonic == "push_r64":
                reg = int(operands[0])
                # push rsp stores the *pre-decrement* value.
                value = f"r{reg}"
                if reg == 4:
                    em.emit(base, "_v = r4")
                    value = "_v"
                em.emit(base, "r4 = (r4 - 8) & _M")
                emit_fault_guarded(
                    base,
                    lambda ind, v=value: emit_write(ind, "r4", v, 8),
                    em.pending,
                    addr,
                )
                if live_check:
                    emit_live_bail(base, next_rip, em.pending + 1)
            elif mnemonic == "pop_r64":
                reg = int(operands[0])
                # pop rsp: the popped value replaces rsp, overriding the
                # post-read increment (matches the interpreter's
                # write64-after-pop64 ordering).
                dst = "_v" if reg == 4 else f"r{reg}"
                emit_fault_guarded(
                    base,
                    lambda ind, d=dst: emit_read(ind, d, "r4", 8),
                    em.pending,
                    addr,
                )
                if reg == 4:
                    em.emit(base, "r4 = _v")
                else:
                    em.emit(base, "r4 = (r4 + 8) & _M")
            elif mnemonic in ("mov_r32_rsp_disp8", "mov_r64_rsp_disp8"):
                reg, disp = int(operands[0]), operands[1]
                width = 8 if mnemonic.endswith("r64_rsp_disp8") else 4
                em.emit(base, f"_a = (r4 + {disp}) & _M")
                emit_fault_guarded(
                    base,
                    lambda ind, r=reg, w=width: emit_read(ind, f"r{r}", "_a", w),
                    em.pending,
                    addr,
                )
            elif mnemonic in ("mov_rsp_disp8_r32", "mov_rsp_disp8_r64"):
                disp, reg = operands[0], int(operands[1])
                width = 8 if mnemonic.endswith("r64") else 4
                val = f"r{reg}" if width == 8 else f"r{reg} & 0xffffffff"
                em.emit(base, f"_a = (r4 + {disp}) & _M")
                emit_fault_guarded(
                    base,
                    lambda ind, v=val, w=width: emit_write(ind, "_a", v, w),
                    em.pending,
                    addr,
                )
                if live_check:
                    emit_live_bail(base, next_rip, em.pending + 1)
            else:  # pragma: no cover - recorder filters unknown mnemonics
                raise _Abort
            em.pending += 1
        elif kind == "cc":
            _, addr, mnemonic, taken, fall, predicted = step
            conds = {
                "je_rel8": ("zf", "not zf"),
                "jne_rel8": ("not zf", "zf"),
                "jl_rel8": ("sf", "not sf"),
                "jg_rel8": ("not (sf or zf)", "sf or zf"),
            }
            branch_cond, inverse = conds[mnemonic]
            exit_cond = inverse if predicted else branch_cond
            exit_rip = fall if predicted else taken
            em.emit(base, f"if {exit_cond}:")
            for line in exit_lines(em.pending + 1, f"{exit_rip:#x}", guard=True):
                em.emit(base + 1, line)
            em.pending += 1
        elif kind == "jmp":
            em.pending += 1
        elif kind == "call":
            _, addr, next_rip, target = step
            em.emit(base, "r4 = (r4 - 8) & _M")
            emit_fault_guarded(
                base,
                lambda ind, v=next_rip: emit_write(ind, "r4", f"{v:#x}", 8),
                em.pending,
                addr,
            )
            if live_check:
                emit_live_bail(base, target, em.pending + 1)
            em.pending += 1
        elif kind == "call_ind":
            _, addr, slot, next_rip, target = step
            emit_fault_guarded(
                base,
                lambda ind, s=slot: emit_read(ind, "_t", f"{s:#x}", 8),
                em.pending,
                addr,
            )
            em.emit(base, "r4 = (r4 - 8) & _M")
            emit_fault_guarded(
                base,
                lambda ind, v=next_rip: emit_write(ind, "r4", f"{v:#x}", 8),
                em.pending,
                addr,
            )
            em.emit(base, f"if _t != {target:#x}:")
            for line in exit_lines(em.pending + 1, "_t", guard=True):
                em.emit(base + 1, line)
            if live_check:
                emit_live_bail(base, target, em.pending + 1)
            em.pending += 1
        elif kind == "ret_guard":
            _, addr, expected = step
            emit_fault_guarded(
                base,
                lambda ind: emit_read(ind, "_t", "r4", 8),
                em.pending,
                addr,
            )
            em.emit(base, "r4 = (r4 + 8) & _M")
            em.emit(base, f"if _t != {expected:#x}:")
            for line in exit_lines(em.pending + 1, "_t", guard=True):
                em.emit(base + 1, line)
            em.pending += 1
        elif kind == "ret_exit":
            _, addr = step
            emit_fault_guarded(
                base,
                lambda ind: emit_read(ind, "_t", "r4", 8),
                em.pending,
                addr,
            )
            em.emit(base, "r4 = (r4 + 8) & _M")
            for line in exit_lines(em.pending + 1, "_t", guard=False):
                em.emit(base, line)
        elif kind == "stub_call":
            _, addr, slot, next_rip, target, resume = step
            emit_fault_guarded(
                base,
                lambda ind, s=slot: emit_read(ind, "_t", f"{s:#x}", 8),
                em.pending,
                addr,
            )
            em.emit(base, "r4 = (r4 - 8) & _M")
            emit_fault_guarded(
                base,
                lambda ind, v=next_rip: emit_write(ind, "r4", f"{v:#x}", 8),
                em.pending,
                addr,
            )
            em.emit(base, f"if _t != {target:#x}:")
            for line in exit_lines(em.pending + 1, "_t", guard=True):
                em.emit(base + 1, line)
            # Sync the interpreter-visible state (count, clock, registers,
            # RIP) before handing control to foreign Python: the stub must
            # observe exactly what it would mid-interpretation.
            em.emit(base, f"n += {em.pending + 1}")
            em.emit(base, "cpu.instructions_retired += n - _sy")
            if charge:
                em.emit(base, f"_adv((n - _sy) * {ns})")
            em.emit(base, "_sy = n")
            for line in spill_lines():
                em.emit(base, line)
            em.emit(base, f"regs.rip = {target:#x}")
            em.emit(base, f"_fn = _stubs_get({target:#x})")
            em.emit(base, "if _fn is None:")
            em.emit(base + 1, "_STATS.guard_exits += 1")
            em.emit(base + 1, "return n")
            em.emit(base, "_fn(cpu)")
            em.emit(base, "n += 1")
            em.emit(base, "cpu.instructions_retired += 1")
            if charge:
                em.emit(base, f"_adv({ns})")
            em.emit(base, "_sy = n")
            em.emit(
                base,
                f"if cpu.halted or regs.rip != {resume:#x} or not _L[0]:",
            )
            em.emit(base + 1, "_STATS.guard_exits += 1")
            em.emit(base + 1, "return n")
            for line in reload_lines():
                em.emit(base, line)
            em.pending = 0
        elif kind == "exit":
            _, addr = step
            for line in exit_lines(em.pending, f"{addr:#x}", guard=False):
                em.emit(base, line)
        else:  # pragma: no cover
            raise _Abort
    if loop:
        if em.pending:
            em.emit(base, f"n += {em.pending}")
        em.pending = 0
    return "\n".join(em.lines) + "\n"
