"""Program images with syscall-site metadata.

A :class:`Binary` is assembled machine code plus the bookkeeping the
experiments need: where each ``syscall`` instruction sits, which source-level
pattern produced it (glibc wrapper, libpthread cancellable wrapper, Go
runtime, hand-rolled), and symbol addresses.  ABOM itself never reads this
metadata — it works purely on bytes — but Table 1 needs it to report
per-pattern outcomes, and the offline patching tool uses it the way a
developer would use symbols.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.arch.memory import PagedMemory, PageFlags


class SitePattern(enum.Enum):
    """How the code that issues a syscall is shaped (paper §4.4, Table 1)."""

    #: ``mov $imm32,%eax; syscall`` — the 5+2 byte glibc wrapper shape;
    #: patchable online with a 7-byte replacement (Fig 2, Case 1).
    MOV_EAX_IMM = "mov_eax_imm"
    #: ``mov $imm32,%rax; syscall`` — the 7+2 byte shape; patchable online
    #: with the two-phase 9-byte replacement (Fig 2).
    MOV_RAX_IMM = "mov_rax_imm"
    #: ``mov disp8(%rsp),%eax; syscall`` — the Go ``syscall.Syscall`` shape;
    #: patchable online with a 7-byte replacement (Fig 2, Case 2).
    GO_STACK = "go_stack"
    #: libpthread cancellable wrapper: instructions between the ``mov`` and
    #: the ``syscall`` (cancellation check) — NOT recognized by ABOM; only
    #: the offline tool handles it (the MySQL row of Table 1).
    CANCELLABLE = "cancellable"
    #: ``syscall`` with %rax loaded far away / reached by a jump — never
    #: patchable, always forwarded.
    BARE = "bare"

    @property
    def online_patchable(self) -> bool:
        return self in (
            SitePattern.MOV_EAX_IMM,
            SitePattern.MOV_RAX_IMM,
            SitePattern.GO_STACK,
        )


@dataclass
class SyscallSite:
    """One ``syscall`` instruction in a binary."""

    #: Address of the ``syscall`` instruction itself (not the mov).
    syscall_addr: int
    pattern: SitePattern
    #: Syscall number, when statically known (None for GO_STACK/BARE).
    nr: int | None = None
    symbol: str = ""


@dataclass
class Binary:
    """Assembled code plus metadata, loadable into paged memory."""

    code: bytes
    base: int
    entry: int
    sites: list[SyscallSite] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    name: str = "a.out"

    def validate_sites(self) -> None:
        """Check that every declared site really is a ``syscall``.

        Site metadata is bookkeeping layered over the raw bytes; nothing
        in the tool chain stops a hand-written :class:`SyscallSite` (or a
        drifted test fixture) from pointing somewhere else.  Every
        declared site must decode to ``0f 05`` at its recorded address.
        """
        for site in self.sites:
            offset = site.syscall_addr - self.base
            found = self.code[max(offset, 0) : offset + 2]
            if offset < 0 or found != b"\x0f\x05":
                label = site.symbol or hex(site.syscall_addr)
                detail = (
                    f"found bytes {found.hex(' ')}" if found and offset >= 0
                    else "address is outside the text segment"
                )
                raise ValueError(
                    f"{self.name}: declared syscall site {label} at "
                    f"{site.syscall_addr:#x} does not decode to 'syscall' "
                    f"(expected bytes 0f 05; {detail})"
                )

    def load(self, memory: PagedMemory, writable_text: bool = False) -> None:
        """Map the text segment into ``memory`` at :attr:`base`.

        Text is mapped read-only (+USER +EXEC) by default, which is what
        forces ABOM to drop the write-protect bit to patch it.  Site
        metadata is validated first (:meth:`validate_sites`).
        """
        self.validate_sites()
        flags = PageFlags.USER | PageFlags.EXECUTABLE
        if writable_text:
            flags |= PageFlags.WRITABLE
        memory.map_region(self.base, max(len(self.code), 1), flags)
        memory.wp_enabled = False
        try:
            memory.write(self.base, self.code)
        finally:
            memory.wp_enabled = True
        # Loading is not patching: clear dirty bits introduced by the copy.
        for addr in memory.dirty_pages():
            if self.base <= addr < self.base + len(self.code) + 4096:
                memory.set_page_flags(
                    addr, memory.page_flags(addr) & ~PageFlags.DIRTY
                )

    def site_for_symbol(self, symbol: str) -> SyscallSite:
        for site in self.sites:
            if site.symbol == symbol:
                return site
        raise KeyError(f"no syscall site with symbol {symbol!r}")

    @property
    def end(self) -> int:
        return self.base + len(self.code)
