"""Two-pass mini assembler.

Builds :class:`~repro.arch.binary.Binary` images from a method-per-mnemonic
API with labels and syscall-site helpers.  The helpers emit exactly the byte
shapes the paper's Figure 2 shows, and record :class:`SyscallSite` metadata
so experiments can account per-pattern.

Example::

    asm = Assembler(base=0x400000)
    asm.label("loop")
    asm.syscall_site(39, style="mov_eax", symbol="getpid")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    binary = asm.build(name="getpid_loop")
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch import encoding as enc
from repro.arch.binary import Binary, SitePattern, SyscallSite
from repro.arch.registers import Reg


@dataclass
class _Fixup:
    offset: int  # offset of the instruction start in the code stream
    length: int  # instruction length
    label: str
    kind: str  # "rel8" | "rel32"


class Assembler:
    """Accumulates encoded instructions, then resolves label fixups."""

    def __init__(self, base: int = 0x400000) -> None:
        self.base = base
        self._code = bytearray()
        self._labels: dict[str, int] = {}
        self._fixups: list[_Fixup] = []
        self._sites: list[SyscallSite] = []
        self._entry_offset = 0

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def here(self) -> int:
        """Current emission address."""
        return self.base + len(self._code)

    def label(self, name: str) -> int:
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = len(self._code)
        return self.here

    def entry(self) -> None:
        """Mark the current position as the program entry point."""
        self._entry_offset = len(self._code)

    def raw(self, data: bytes) -> None:
        self._code += data

    def _emit(self, data: bytes) -> int:
        offset = len(self._code)
        self._code += data
        return offset

    # ------------------------------------------------------------------
    # Plain instructions
    # ------------------------------------------------------------------
    def mov_imm32(self, reg: Reg, imm: int) -> None:
        self._emit(enc.enc_mov_r32_imm32(reg, imm))

    def mov_imm64_low(self, reg: Reg, imm: int) -> None:
        self._emit(enc.enc_mov_r64_imm32(reg, imm))

    def mov_reg(self, dst: Reg, src: Reg) -> None:
        self._emit(enc.enc_mov_r64_r64(dst, src))

    def load_rsp32(self, reg: Reg, disp: int) -> None:
        self._emit(enc.enc_mov_r32_rsp_disp8(reg, disp))

    def store_rsp32(self, disp: int, reg: Reg) -> None:
        self._emit(enc.enc_mov_rsp_disp8_r32(disp, reg))

    def load_rsp64(self, reg: Reg, disp: int) -> None:
        self._emit(enc.enc_mov_r64_rsp_disp8(reg, disp))

    def store_rsp64(self, disp: int, reg: Reg) -> None:
        self._emit(enc.enc_mov_rsp_disp8_r64(disp, reg))

    def push(self, reg: Reg) -> None:
        self._emit(enc.enc_push_r64(reg))

    def pop(self, reg: Reg) -> None:
        self._emit(enc.enc_pop_r64(reg))

    def add(self, reg: Reg, imm: int) -> None:
        self._emit(enc.enc_add_r64_imm8(reg, imm))

    def sub(self, reg: Reg, imm: int) -> None:
        self._emit(enc.enc_sub_r64_imm8(reg, imm))

    def cmp(self, reg: Reg, imm: int) -> None:
        self._emit(enc.enc_cmp_r64_imm8(reg, imm))

    def inc(self, reg: Reg) -> None:
        self._emit(enc.enc_inc_r64(reg))

    def dec(self, reg: Reg) -> None:
        self._emit(enc.enc_dec_r64(reg))

    def xor(self, dst: Reg, src: Reg) -> None:
        self._emit(enc.enc_xor_r32_r32(dst, src))

    def nop(self, count: int = 1) -> None:
        self._emit(enc.enc_nop() * count)

    def ret(self) -> None:
        self._emit(enc.enc_ret())

    def hlt(self) -> None:
        self._emit(enc.enc_hlt())

    def raw_syscall(self) -> int:
        """Emit a bare ``syscall`` and return its address."""
        offset = self._emit(enc.enc_syscall())
        return self.base + offset

    # ------------------------------------------------------------------
    # Control flow with labels
    # ------------------------------------------------------------------
    def jmp(self, label: str) -> None:
        offset = self._emit(enc.enc_jmp_rel32(0))
        self._fixups.append(_Fixup(offset, 5, label, "rel32"))

    def jmp8(self, label: str) -> None:
        offset = self._emit(enc.enc_jmp_rel8(0))
        self._fixups.append(_Fixup(offset, 2, label, "rel8"))

    def je(self, label: str) -> None:
        self._jcc("je", label)

    def jne(self, label: str) -> None:
        self._jcc("jne", label)

    def jl(self, label: str) -> None:
        self._jcc("jl", label)

    def jg(self, label: str) -> None:
        self._jcc("jg", label)

    def _jcc(self, cond: str, label: str) -> None:
        offset = self._emit(enc.enc_jcc_rel8(cond, 0))
        self._fixups.append(_Fixup(offset, 2, label, "rel8"))

    def call(self, label: str) -> None:
        offset = self._emit(enc.enc_call_rel32(0))
        self._fixups.append(_Fixup(offset, 5, label, "rel32"))

    # ------------------------------------------------------------------
    # Syscall-site helpers (the Figure 2 shapes)
    # ------------------------------------------------------------------
    def syscall_site(
        self,
        nr: int,
        style: str = "mov_eax",
        symbol: str = "",
        cancel_gap: int = 2,
    ) -> SyscallSite:
        """Emit a syscall site shaped like ``style`` and record it.

        Styles:

        * ``mov_eax`` — glibc wrapper shape (Fig 2 Case 1, 7-byte patch);
        * ``mov_rax`` — 9-byte shape (Fig 2 two-phase patch);
        * ``go_stack`` — Go runtime shape (Fig 2 Case 2); the caller must
          have stored the syscall number at ``8(%rsp)``;
        * ``cancellable`` — libpthread cancellable wrapper: a cancellation
          check sits between the mov and the syscall, defeating ABOM;
        * ``bare`` — a lone ``syscall``; %rax set elsewhere.
        """
        if style == "mov_eax":
            self.mov_imm32(Reg.RAX, nr)
            addr = self.raw_syscall()
            pattern = SitePattern.MOV_EAX_IMM
        elif style == "mov_rax":
            self.mov_imm64_low(Reg.RAX, nr)
            addr = self.raw_syscall()
            pattern = SitePattern.MOV_RAX_IMM
        elif style == "go_stack":
            # Fig 2 shows the 5-byte ``48 8b 44 24 08`` encoding.
            self.load_rsp64(Reg.RAX, 8)
            addr = self.raw_syscall()
            pattern = SitePattern.GO_STACK
        elif style == "cancellable":
            self.mov_imm32(Reg.RAX, nr)
            # The cancellation-flag test of the libpthread wrapper; any
            # intervening instruction breaks ABOM's pattern match (§5.2).
            # ``cancel_gap`` controls how big the check sequence is.
            if cancel_gap < 1:
                raise ValueError(
                    f"cancel_gap must be >= 1: {cancel_gap}"
                )
            self.nop(cancel_gap)
            addr = self.raw_syscall()
            pattern = SitePattern.CANCELLABLE
        elif style == "bare":
            addr = self.raw_syscall()
            pattern = SitePattern.BARE
        else:
            raise ValueError(f"unknown syscall site style {style!r}")
        recorded_nr = None if style in ("go_stack", "bare") else nr
        site = SyscallSite(addr, pattern, recorded_nr, symbol)
        self._sites.append(site)
        return site

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(self, name: str = "a.out") -> Binary:
        code = bytearray(self._code)
        for fixup in self._fixups:
            if fixup.label not in self._labels:
                raise ValueError(f"undefined label {fixup.label!r}")
            target = self._labels[fixup.label]
            rel = target - (fixup.offset + fixup.length)
            if fixup.kind == "rel8":
                if not -128 <= rel <= 127:
                    raise ValueError(
                        f"label {fixup.label!r} out of rel8 range ({rel})"
                    )
                code[fixup.offset + fixup.length - 1] = rel & 0xFF
            else:
                code[fixup.offset + 1 : fixup.offset + 5] = (
                    rel & 0xFFFFFFFF
                ).to_bytes(4, "little")
        symbols = {
            label: self.base + offset for label, offset in self._labels.items()
        }
        return Binary(
            code=bytes(code),
            base=self.base,
            entry=self.base + self._entry_offset,
            sites=list(self._sites),
            symbols=symbols,
            name=name,
        )
