"""Encoder/decoder for the x86-64 instruction subset.

The subset is chosen to cover (a) every byte pattern ABOM recognizes and
emits (Figure 2 of the paper) and (b) enough ALU/branch/stack instructions to
write the synthetic workload programs the experiments execute.  Encodings are
the real x86-64 ones — the decoder works on actual machine-code bytes, which
is what makes the ABOM reproduction meaningful.

Supported forms::

    b8+r imm32              mov    $imm32, %e<reg>      (zero-extends)
    48 c7 c0+r imm32        mov    $imm32, %r<reg>      (sign-extends)
    0f 05                   syscall
    ff 14 25 disp32         callq  *disp32              (absolute indirect)
    e8 rel32                call   rel32
    eb rel8 / e9 rel32      jmp
    74/75/7c/7f rel8        je/jne/jl/jg
    c3                      ret
    50+r / 58+r             push/pop %r<reg>
    48 89 c0|11..           mov    %r, %r   (mod=11)
    8b 44 24 disp8          mov    disp8(%rsp), %eax    (Go pattern, Fig 2)
    48 8b 44 24 disp8       mov    disp8(%rsp), %rax
    89 44 24 disp8          mov    %eax, disp8(%rsp)
    48 89 44 24 disp8       mov    %rax, disp8(%rsp)
    48 83 /0|/5|/7 ib       add/sub/cmp $imm8, %r<reg>
    48 ff c0+r / c8+r       inc/dec %r<reg>
    31 /r (mod=11)          xor %e<reg>, %e<reg>
    90                      nop
    cc                      int3
    f4                      hlt
    60                      (invalid in 64-bit mode -> #UD; the tail byte of
                             a patched call, §4.4)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.registers import Reg, sign_extend

MASK64 = (1 << 64) - 1

#: Every mnemonic the decoder can produce.  The CPU's handler table is
#: checked against this set so the decoder and executor cannot drift apart.
ALL_MNEMONICS = frozenset(
    {
        "nop",
        "ret",
        "int3",
        "hlt",
        "syscall",
        "push_r64",
        "pop_r64",
        "mov_r32_imm32",
        "mov_r64_imm32",
        "mov_r64_r64",
        "mov_r32_r32",
        "mov_r32_rsp_disp8",
        "mov_r64_rsp_disp8",
        "mov_rsp_disp8_r32",
        "mov_rsp_disp8_r64",
        "call_rel32",
        "call_abs_ind",
        "jmp_rel8",
        "jmp_rel32",
        "je_rel8",
        "jne_rel8",
        "jl_rel8",
        "jg_rel8",
        "add_r64_imm8",
        "sub_r64_imm8",
        "cmp_r64_imm8",
        "inc_r64",
        "dec_r64",
        "xor_r32_r32",
        "xor_r64_r64",
    }
)

#: Mnemonics that end a basic block for the decode cache: anything that
#: transfers control, traps, or halts.  ``syscall``/``int3`` end blocks
#: because their trap handlers may move RIP arbitrarily — and, in ABOM's
#: case, rewrite the very bytes the block was decoded from.
BLOCK_TERMINATORS = frozenset(
    {
        "ret",
        "hlt",
        "syscall",
        "int3",
        "call_rel32",
        "call_abs_ind",
        "jmp_rel8",
        "jmp_rel32",
        "je_rel8",
        "jne_rel8",
        "jl_rel8",
        "jg_rel8",
    }
)


class InvalidOpcode(Exception):
    """Raised when the decoder meets bytes outside the subset (#UD)."""

    def __init__(self, addr_or_offset: int, byte: int) -> None:
        super().__init__(
            f"invalid opcode {byte:#04x} at offset {addr_or_offset:#x}"
        )
        self.offset = addr_or_offset
        self.byte = byte


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    mnemonic: str
    length: int
    raw: bytes
    operands: tuple = ()

    def __str__(self) -> str:
        ops = ", ".join(
            hex(op) if isinstance(op, int) else str(op)
            for op in self.operands
        )
        return f"{self.mnemonic} {ops}".strip()


def _u32(data: bytes, offset: int) -> int:
    return int.from_bytes(data[offset : offset + 4], "little")


def _need(data: bytes, offset: int, count: int) -> None:
    if offset + count > len(data):
        raise InvalidOpcode(offset, data[offset] if offset < len(data) else 0)


# ----------------------------------------------------------------------
# Decoder
# ----------------------------------------------------------------------
def decode(data: bytes, offset: int = 0) -> Instruction:
    """Decode one instruction starting at ``data[offset]``."""
    _need(data, offset, 1)
    b0 = data[offset]

    if b0 == 0x90:
        return Instruction("nop", 1, bytes(data[offset : offset + 1]))
    if b0 == 0xC3:
        return Instruction("ret", 1, bytes(data[offset : offset + 1]))
    if b0 == 0xCC:
        return Instruction("int3", 1, bytes(data[offset : offset + 1]))
    if b0 == 0xF4:
        return Instruction("hlt", 1, bytes(data[offset : offset + 1]))
    if 0x50 <= b0 <= 0x57:
        return Instruction(
            "push_r64", 1, bytes(data[offset : offset + 1]), (Reg(b0 - 0x50),)
        )
    if 0x58 <= b0 <= 0x5F:
        return Instruction(
            "pop_r64", 1, bytes(data[offset : offset + 1]), (Reg(b0 - 0x58),)
        )
    if 0xB8 <= b0 <= 0xBF:
        _need(data, offset, 5)
        imm = _u32(data, offset + 1)
        return Instruction(
            "mov_r32_imm32",
            5,
            bytes(data[offset : offset + 5]),
            (Reg(b0 - 0xB8), imm),
        )
    if b0 == 0x0F:
        _need(data, offset, 2)
        if data[offset + 1] == 0x05:
            return Instruction("syscall", 2, bytes(data[offset : offset + 2]))
        raise InvalidOpcode(offset, data[offset + 1])
    if b0 == 0xEB:
        _need(data, offset, 2)
        rel = sign_extend(data[offset + 1], 8)
        return Instruction(
            "jmp_rel8", 2, bytes(data[offset : offset + 2]), (rel,)
        )
    if b0 == 0xE9:
        _need(data, offset, 5)
        rel = sign_extend(_u32(data, offset + 1), 32)
        return Instruction(
            "jmp_rel32", 5, bytes(data[offset : offset + 5]), (rel,)
        )
    if b0 == 0xE8:
        _need(data, offset, 5)
        rel = sign_extend(_u32(data, offset + 1), 32)
        return Instruction(
            "call_rel32", 5, bytes(data[offset : offset + 5]), (rel,)
        )
    if b0 in (0x74, 0x75, 0x7C, 0x7F):
        _need(data, offset, 2)
        rel = sign_extend(data[offset + 1], 8)
        name = {0x74: "je_rel8", 0x75: "jne_rel8", 0x7C: "jl_rel8",
                0x7F: "jg_rel8"}[b0]
        return Instruction(name, 2, bytes(data[offset : offset + 2]), (rel,))
    if b0 == 0xFF:
        _need(data, offset, 2)
        modrm = data[offset + 1]
        if modrm == 0x14:  # call [SIB]
            _need(data, offset, 3)
            if data[offset + 2] == 0x25:  # SIB: disp32, no base/index
                _need(data, offset, 7)
                addr = sign_extend(_u32(data, offset + 3), 32) & MASK64
                return Instruction(
                    "call_abs_ind",
                    7,
                    bytes(data[offset : offset + 7]),
                    (addr,),
                )
        raise InvalidOpcode(offset, modrm)
    if b0 == 0x8B:
        # mov r32, [rsp+disp8]  (Fig 2 "Case 2", the Go runtime pattern)
        _need(data, offset, 2)
        modrm = data[offset + 1]
        if (modrm & 0xC7) == 0x44:  # mod=01 rm=100 -> SIB+disp8
            _need(data, offset, 4)
            if data[offset + 2] == 0x24:  # SIB: base=rsp
                disp = sign_extend(data[offset + 3], 8)
                reg = Reg((modrm >> 3) & 0x7)
                return Instruction(
                    "mov_r32_rsp_disp8",
                    4,
                    bytes(data[offset : offset + 4]),
                    (reg, disp),
                )
        raise InvalidOpcode(offset, modrm)
    if b0 == 0x89:
        _need(data, offset, 2)
        modrm = data[offset + 1]
        if (modrm & 0xC0) == 0xC0:  # mov r32 -> r32
            return Instruction(
                "mov_r32_r32",
                2,
                bytes(data[offset : offset + 2]),
                (Reg(modrm & 0x7), Reg((modrm >> 3) & 0x7)),
            )
        if (modrm & 0xC7) == 0x44:
            _need(data, offset, 4)
            if data[offset + 2] == 0x24:
                disp = sign_extend(data[offset + 3], 8)
                reg = Reg((modrm >> 3) & 0x7)
                return Instruction(
                    "mov_rsp_disp8_r32",
                    4,
                    bytes(data[offset : offset + 4]),
                    (disp, reg),
                )
        raise InvalidOpcode(offset, modrm)
    if b0 == 0x31:
        _need(data, offset, 2)
        modrm = data[offset + 1]
        if (modrm & 0xC0) == 0xC0:
            return Instruction(
                "xor_r32_r32",
                2,
                bytes(data[offset : offset + 2]),
                (Reg(modrm & 0x7), Reg((modrm >> 3) & 0x7)),
            )
        raise InvalidOpcode(offset, modrm)
    if b0 == 0x48:  # REX.W
        return _decode_rexw(data, offset)
    raise InvalidOpcode(offset, b0)


def _decode_rexw(data: bytes, offset: int) -> Instruction:
    _need(data, offset, 2)
    b1 = data[offset + 1]
    if b1 == 0xC7:
        _need(data, offset, 3)
        modrm = data[offset + 2]
        if (modrm & 0xF8) == 0xC0:
            _need(data, offset, 7)
            imm = sign_extend(_u32(data, offset + 3), 32)
            return Instruction(
                "mov_r64_imm32",
                7,
                bytes(data[offset : offset + 7]),
                (Reg(modrm & 0x7), imm),
            )
        raise InvalidOpcode(offset, modrm)
    if b1 == 0x89:
        _need(data, offset, 3)
        modrm = data[offset + 2]
        if (modrm & 0xC0) == 0xC0:
            return Instruction(
                "mov_r64_r64",
                3,
                bytes(data[offset : offset + 3]),
                (Reg(modrm & 0x7), Reg((modrm >> 3) & 0x7)),
            )
        if (modrm & 0xC7) == 0x44:
            _need(data, offset, 5)
            if data[offset + 3] == 0x24:
                disp = sign_extend(data[offset + 4], 8)
                reg = Reg((modrm >> 3) & 0x7)
                return Instruction(
                    "mov_rsp_disp8_r64",
                    5,
                    bytes(data[offset : offset + 5]),
                    (disp, reg),
                )
        raise InvalidOpcode(offset, modrm)
    if b1 == 0x8B:
        _need(data, offset, 3)
        modrm = data[offset + 2]
        if (modrm & 0xC7) == 0x44:
            _need(data, offset, 5)
            if data[offset + 3] == 0x24:
                disp = sign_extend(data[offset + 4], 8)
                reg = Reg((modrm >> 3) & 0x7)
                return Instruction(
                    "mov_r64_rsp_disp8",
                    5,
                    bytes(data[offset : offset + 5]),
                    (reg, disp),
                )
        raise InvalidOpcode(offset, modrm)
    if b1 == 0x83:
        _need(data, offset, 4)
        modrm = data[offset + 2]
        imm = sign_extend(data[offset + 3], 8)
        reg = Reg(modrm & 0x7)
        group = (modrm >> 3) & 0x7
        raw = bytes(data[offset : offset + 4])
        if (modrm & 0xC0) == 0xC0:
            if group == 0:
                return Instruction("add_r64_imm8", 4, raw, (reg, imm))
            if group == 5:
                return Instruction("sub_r64_imm8", 4, raw, (reg, imm))
            if group == 7:
                return Instruction("cmp_r64_imm8", 4, raw, (reg, imm))
        raise InvalidOpcode(offset, modrm)
    if b1 == 0xFF:
        _need(data, offset, 3)
        modrm = data[offset + 2]
        reg = Reg(modrm & 0x7)
        raw = bytes(data[offset : offset + 3])
        if (modrm & 0xF8) == 0xC0:
            return Instruction("inc_r64", 3, raw, (reg,))
        if (modrm & 0xF8) == 0xC8:
            return Instruction("dec_r64", 3, raw, (reg,))
        raise InvalidOpcode(offset, modrm)
    if b1 == 0x31:
        _need(data, offset, 3)
        modrm = data[offset + 2]
        if (modrm & 0xC0) == 0xC0:
            return Instruction(
                "xor_r64_r64",
                3,
                bytes(data[offset : offset + 3]),
                (Reg(modrm & 0x7), Reg((modrm >> 3) & 0x7)),
            )
        raise InvalidOpcode(offset, modrm)
    raise InvalidOpcode(offset, b1)


# ----------------------------------------------------------------------
# Encoder
# ----------------------------------------------------------------------
def enc_mov_r32_imm32(reg: Reg, imm: int) -> bytes:
    return bytes([0xB8 + int(reg)]) + (imm & 0xFFFFFFFF).to_bytes(4, "little")


def enc_mov_r64_imm32(reg: Reg, imm: int) -> bytes:
    return bytes([0x48, 0xC7, 0xC0 + int(reg)]) + (
        imm & 0xFFFFFFFF
    ).to_bytes(4, "little")


def enc_syscall() -> bytes:
    return b"\x0f\x05"


def enc_call_abs_ind(addr: int) -> bytes:
    """``callq *addr`` — the 7-byte form ABOM emits (§4.4).

    ``addr`` must be representable as a sign-extended 32-bit displacement;
    the vsyscall page at ``0xffffffffff600000`` is placed there precisely so
    that it is (Fig 2 shows ``ff 14 25 08 00 60 ff``).
    """
    disp = addr & 0xFFFFFFFF
    if sign_extend(disp, 32) & MASK64 != addr & MASK64:
        raise ValueError(f"address {addr:#x} not encodable as disp32")
    return b"\xff\x14\x25" + disp.to_bytes(4, "little")


def enc_jmp_rel8(rel: int) -> bytes:
    if not -128 <= rel <= 127:
        raise ValueError(f"rel8 out of range: {rel}")
    return b"\xeb" + (rel & 0xFF).to_bytes(1, "little")


def enc_jmp_rel32(rel: int) -> bytes:
    return b"\xe9" + (rel & 0xFFFFFFFF).to_bytes(4, "little")


def enc_call_rel32(rel: int) -> bytes:
    return b"\xe8" + (rel & 0xFFFFFFFF).to_bytes(4, "little")


def enc_jcc_rel8(cond: str, rel: int) -> bytes:
    opcode = {"je": 0x74, "jne": 0x75, "jl": 0x7C, "jg": 0x7F}[cond]
    if not -128 <= rel <= 127:
        raise ValueError(f"rel8 out of range: {rel}")
    return bytes([opcode, rel & 0xFF])


def enc_ret() -> bytes:
    return b"\xc3"


def enc_push_r64(reg: Reg) -> bytes:
    return bytes([0x50 + int(reg)])


def enc_pop_r64(reg: Reg) -> bytes:
    return bytes([0x58 + int(reg)])


def enc_mov_r64_r64(dst: Reg, src: Reg) -> bytes:
    return bytes([0x48, 0x89, 0xC0 | (int(src) << 3) | int(dst)])


def enc_mov_r32_rsp_disp8(reg: Reg, disp: int) -> bytes:
    return bytes([0x8B, 0x44 | (int(reg) << 3), 0x24, disp & 0xFF])


def enc_mov_rsp_disp8_r32(disp: int, reg: Reg) -> bytes:
    return bytes([0x89, 0x44 | (int(reg) << 3), 0x24, disp & 0xFF])


def enc_mov_r64_rsp_disp8(reg: Reg, disp: int) -> bytes:
    return bytes([0x48, 0x8B, 0x44 | (int(reg) << 3), 0x24, disp & 0xFF])


def enc_mov_rsp_disp8_r64(disp: int, reg: Reg) -> bytes:
    return bytes([0x48, 0x89, 0x44 | (int(reg) << 3), 0x24, disp & 0xFF])


def enc_add_r64_imm8(reg: Reg, imm: int) -> bytes:
    return bytes([0x48, 0x83, 0xC0 | int(reg), imm & 0xFF])


def enc_sub_r64_imm8(reg: Reg, imm: int) -> bytes:
    return bytes([0x48, 0x83, 0xE8 | int(reg), imm & 0xFF])


def enc_cmp_r64_imm8(reg: Reg, imm: int) -> bytes:
    return bytes([0x48, 0x83, 0xF8 | int(reg), imm & 0xFF])


def enc_inc_r64(reg: Reg) -> bytes:
    return bytes([0x48, 0xFF, 0xC0 | int(reg)])


def enc_dec_r64(reg: Reg) -> bytes:
    return bytes([0x48, 0xFF, 0xC8 | int(reg)])


def enc_xor_r32_r32(dst: Reg, src: Reg) -> bytes:
    return bytes([0x31, 0xC0 | (int(src) << 3) | int(dst)])


def enc_nop() -> bytes:
    return b"\x90"


def enc_hlt() -> bytes:
    return b"\xf4"
