"""x86-64 integer register file.

Registers are stored as unsigned 64-bit values.  Writing a 32-bit
sub-register zero-extends into the full register, matching the architecture;
this matters because ABOM's recognized patterns use both ``mov $imm,%eax``
(32-bit, zero-extending) and ``mov $imm,%rax`` (64-bit, sign-extended
immediate).
"""

from __future__ import annotations

from enum import IntEnum

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1


class Reg(IntEnum):
    """Register numbers as used in ModRM/opcode encodings."""

    RAX = 0
    RCX = 1
    RDX = 2
    RBX = 3
    RSP = 4
    RBP = 5
    RSI = 6
    RDI = 7
    R8 = 8
    R9 = 9
    R10 = 10
    R11 = 11
    R12 = 12
    R13 = 13
    R14 = 14
    R15 = 15


def to_signed64(value: int) -> int:
    """Interpret an unsigned 64-bit value as signed."""
    value &= MASK64
    return value - (1 << 64) if value >= (1 << 63) else value


def to_unsigned64(value: int) -> int:
    return value & MASK64


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend ``value`` from ``bits`` to a Python int."""
    mask = (1 << bits) - 1
    value &= mask
    sign = 1 << (bits - 1)
    return value - (1 << bits) if value & sign else value


class RegisterFile:
    """Sixteen 64-bit general-purpose registers plus RIP and flags."""

    __slots__ = ("_regs", "rip", "zf", "sf", "cf")

    def __init__(self) -> None:
        self._regs = [0] * 16
        self.rip = 0
        self.zf = False
        self.sf = False
        self.cf = False

    def read64(self, reg: Reg | int) -> int:
        return self._regs[int(reg)]

    def write64(self, reg: Reg | int, value: int) -> None:
        self._regs[int(reg)] = value & MASK64

    def read32(self, reg: Reg | int) -> int:
        return self._regs[int(reg)] & MASK32

    def write32(self, reg: Reg | int, value: int) -> None:
        # 32-bit writes zero-extend to 64 bits on x86-64.
        self._regs[int(reg)] = value & MASK32

    @property
    def rax(self) -> int:
        return self._regs[Reg.RAX]

    @rax.setter
    def rax(self, value: int) -> None:
        self._regs[Reg.RAX] = value & MASK64

    @property
    def rsp(self) -> int:
        return self._regs[Reg.RSP]

    @rsp.setter
    def rsp(self, value: int) -> None:
        self._regs[Reg.RSP] = value & MASK64

    def snapshot(self) -> dict[str, int]:
        """Copy of the architectural state, for tests and tracing."""
        state = {reg.name.lower(): self._regs[reg] for reg in Reg}
        state["rip"] = self.rip
        return state

    def __repr__(self) -> str:
        return (
            f"RegisterFile(rip={self.rip:#x}, rax={self.rax:#x}, "
            f"rsp={self.rsp:#x})"
        )
