"""CPU interpreter for the x86-64 subset.

The interpreter executes real machine code from :class:`PagedMemory` and
delivers traps (``syscall``, #UD, #BP, page faults) to a pluggable trap
handler — in this reproduction the trap handler is the platform's kernel
model (host Linux, stock Xen PV, the X-Kernel, the gVisor Sentry, ...).

Two hooks make the LibOS integration possible without writing the whole
LibOS in machine code:

* **trap handler** — invoked with a :class:`Trap`; it may mutate CPU state
  (deliver the syscall, fix RIP after a #UD in a patched call tail, ...);
* **native stubs** — addresses that, when reached by RIP, invoke a Python
  callable instead of fetching code.  The X-LibOS maps its syscall-entry
  stubs (the targets of the vsyscall entry table) this way.  A stub is
  responsible for its own ``ret`` semantics.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.arch.encoding import Instruction, InvalidOpcode, decode
from repro.arch.memory import PagedMemory
from repro.arch.registers import Reg, RegisterFile, to_signed64

MASK64 = (1 << 64) - 1
MAX_INSTR_LEN = 15


class TrapKind(enum.Enum):
    SYSCALL = "syscall"
    INVALID_OPCODE = "invalid_opcode"
    BREAKPOINT = "breakpoint"
    PAGE_FAULT = "page_fault"


class Trap(Exception):
    """An architectural trap delivered to the platform's kernel model."""

    def __init__(self, kind: TrapKind, rip: int, detail: str = "") -> None:
        super().__init__(f"{kind.value} at {rip:#x} {detail}".strip())
        self.kind = kind
        self.rip = rip
        self.detail = detail


class CpuHalted(Exception):
    """Raised by :meth:`CPU.run` when the program halts (hlt / exit)."""


TrapHandler = Callable[["CPU", Trap], None]
NativeStub = Callable[["CPU"], None]


class CPU:
    """Interprets the instruction subset over paged memory."""

    def __init__(
        self,
        memory: PagedMemory,
        clock=None,
        instruction_ns: float = 0.0,
    ) -> None:
        self.mem = memory
        self.regs = RegisterFile()
        self.clock = clock
        self.instruction_ns = instruction_ns
        self.trap_handler: Optional[TrapHandler] = None
        self.native_stubs: dict[int, NativeStub] = {}
        self.instructions_retired = 0
        self.halted = False

    # ------------------------------------------------------------------
    # Stack helpers
    # ------------------------------------------------------------------
    def push64(self, value: int) -> None:
        self.regs.rsp = (self.regs.rsp - 8) & MASK64
        self.mem.write_u64(self.regs.rsp, value)

    def pop64(self) -> int:
        value = self.mem.read_u64(self.regs.rsp)
        self.regs.rsp = (self.regs.rsp + 8) & MASK64
        return value

    # ------------------------------------------------------------------
    # Fetch/decode
    # ------------------------------------------------------------------
    def _fetch_window(self, addr: int) -> bytes:
        """Read up to MAX_INSTR_LEN mapped bytes starting at ``addr``."""
        out = bytearray()
        for i in range(MAX_INSTR_LEN):
            if not self.mem.is_mapped(addr + i):
                break
            out += self.mem.read(addr + i, 1)
        if not out:
            raise Trap(TrapKind.PAGE_FAULT, addr, "instruction fetch")
        return bytes(out)

    def decode_at(self, addr: int) -> Instruction:
        window = self._fetch_window(addr)
        return decode(window, 0)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction (or one native stub)."""
        if self.halted:
            raise CpuHalted()
        rip = self.regs.rip
        stub = self.native_stubs.get(rip)
        if stub is not None:
            stub(self)
            self._charge()
            return
        try:
            instr = self.decode_at(rip)
        except InvalidOpcode as exc:
            self._deliver(
                Trap(TrapKind.INVALID_OPCODE, rip, f"byte {exc.byte:#04x}")
            )
            self._charge()
            return
        self._execute(instr)
        self._charge()

    def run(self, max_instructions: int = 10_000_000) -> int:
        """Run until halt; returns instructions retired in this call."""
        start = self.instructions_retired
        while not self.halted:
            if self.instructions_retired - start >= max_instructions:
                raise RuntimeError(
                    f"instruction budget exhausted ({max_instructions})"
                )
            self.step()
        return self.instructions_retired - start

    def _charge(self) -> None:
        self.instructions_retired += 1
        if self.clock is not None and self.instruction_ns:
            self.clock.advance(self.instruction_ns)

    def _deliver(self, trap: Trap) -> None:
        if self.trap_handler is None:
            raise trap
        self.trap_handler(self, trap)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def _execute(self, instr: Instruction) -> None:
        regs = self.regs
        next_rip = regs.rip + instr.length
        name = instr.mnemonic

        if name == "nop":
            regs.rip = next_rip
        elif name == "hlt":
            self.halted = True
        elif name == "syscall":
            # Deliver BEFORE advancing RIP: handlers (the X-Kernel's ABOM
            # hook in particular) need the syscall instruction's address.
            self._deliver(Trap(TrapKind.SYSCALL, regs.rip))
        elif name == "int3":
            self._deliver(Trap(TrapKind.BREAKPOINT, regs.rip))
        elif name == "mov_r32_imm32":
            reg, imm = instr.operands
            regs.write32(reg, imm)
            regs.rip = next_rip
        elif name == "mov_r64_imm32":
            reg, imm = instr.operands
            regs.write64(reg, imm & MASK64)
            regs.rip = next_rip
        elif name == "mov_r64_r64":
            dst, src = instr.operands
            regs.write64(dst, regs.read64(src))
            regs.rip = next_rip
        elif name == "mov_r32_r32":
            dst, src = instr.operands
            regs.write32(dst, regs.read32(src))
            regs.rip = next_rip
        elif name == "mov_r32_rsp_disp8":
            reg, disp = instr.operands
            regs.write32(reg, self.mem.read_u32((regs.rsp + disp) & MASK64))
            regs.rip = next_rip
        elif name == "mov_r64_rsp_disp8":
            reg, disp = instr.operands
            regs.write64(reg, self.mem.read_u64((regs.rsp + disp) & MASK64))
            regs.rip = next_rip
        elif name == "mov_rsp_disp8_r32":
            disp, reg = instr.operands
            self.mem.write_u32((regs.rsp + disp) & MASK64, regs.read32(reg))
            regs.rip = next_rip
        elif name == "mov_rsp_disp8_r64":
            disp, reg = instr.operands
            self.mem.write_u64((regs.rsp + disp) & MASK64, regs.read64(reg))
            regs.rip = next_rip
        elif name == "push_r64":
            (reg,) = instr.operands
            self.push64(regs.read64(reg))
            regs.rip = next_rip
        elif name == "pop_r64":
            (reg,) = instr.operands
            regs.write64(reg, self.pop64())
            regs.rip = next_rip
        elif name == "ret":
            regs.rip = self.pop64()
        elif name == "call_rel32":
            (rel,) = instr.operands
            self.push64(next_rip)
            regs.rip = (next_rip + rel) & MASK64
        elif name == "call_abs_ind":
            (slot_addr,) = instr.operands
            target = self.mem.read_u64(slot_addr)
            self.push64(next_rip)
            regs.rip = target
        elif name == "jmp_rel8" or name == "jmp_rel32":
            (rel,) = instr.operands
            regs.rip = (next_rip + rel) & MASK64
        elif name == "je_rel8":
            (rel,) = instr.operands
            regs.rip = (next_rip + rel) & MASK64 if regs.zf else next_rip
        elif name == "jne_rel8":
            (rel,) = instr.operands
            regs.rip = next_rip if regs.zf else (next_rip + rel) & MASK64
        elif name == "jl_rel8":
            (rel,) = instr.operands
            regs.rip = (next_rip + rel) & MASK64 if regs.sf else next_rip
        elif name == "jg_rel8":
            (rel,) = instr.operands
            taken = not regs.sf and not regs.zf
            regs.rip = (next_rip + rel) & MASK64 if taken else next_rip
        elif name == "add_r64_imm8":
            reg, imm = instr.operands
            result = (regs.read64(reg) + imm) & MASK64
            regs.write64(reg, result)
            self._set_flags(result)
            regs.rip = next_rip
        elif name == "sub_r64_imm8":
            reg, imm = instr.operands
            result = (regs.read64(reg) - imm) & MASK64
            regs.write64(reg, result)
            self._set_flags(result)
            regs.rip = next_rip
        elif name == "cmp_r64_imm8":
            reg, imm = instr.operands
            value = regs.read64(reg)
            result = (value - imm) & MASK64
            self._set_flags(result)
            regs.cf = value < (imm & MASK64)
            regs.rip = next_rip
        elif name == "inc_r64":
            (reg,) = instr.operands
            result = (regs.read64(reg) + 1) & MASK64
            regs.write64(reg, result)
            self._set_flags(result)
            regs.rip = next_rip
        elif name == "dec_r64":
            (reg,) = instr.operands
            result = (regs.read64(reg) - 1) & MASK64
            regs.write64(reg, result)
            self._set_flags(result)
            regs.rip = next_rip
        elif name == "xor_r32_r32":
            dst, src = instr.operands
            result = regs.read32(dst) ^ regs.read32(src)
            regs.write32(dst, result)
            self._set_flags(result)
            regs.rip = next_rip
        elif name == "xor_r64_r64":
            dst, src = instr.operands
            result = regs.read64(dst) ^ regs.read64(src)
            regs.write64(dst, result)
            self._set_flags(result)
            regs.rip = next_rip
        else:  # pragma: no cover - decoder and executor must stay in sync
            raise NotImplementedError(f"no semantics for {name}")

    def _set_flags(self, result: int) -> None:
        self.regs.zf = result == 0
        self.regs.sf = to_signed64(result) < 0
