"""CPU interpreter for the x86-64 subset.

The interpreter executes real machine code from :class:`PagedMemory` and
delivers traps (``syscall``, #UD, #BP, page faults) to a pluggable trap
handler — in this reproduction the trap handler is the platform's kernel
model (host Linux, stock Xen PV, the X-Kernel, the gVisor Sentry, ...).

Two hooks make the LibOS integration possible without writing the whole
LibOS in machine code:

* **trap handler** — invoked with a :class:`Trap`; it may mutate CPU state
  (deliver the syscall, fix RIP after a #UD in a patched call tail, ...);
* **native stubs** — addresses that, when reached by RIP, invoke a Python
  callable instead of fetching code.  The X-LibOS maps its syscall-entry
  stubs (the targets of the vsyscall entry table) this way.  A stub is
  responsible for its own ``ret`` semantics.

Decode performance comes from a **basic-block cache**: on the first visit
to an address the interpreter decodes straight-line instructions until a
control transfer, trap instruction, or page boundary, resolves each one's
semantics handler from the dispatch table, and stores the block stamped
with the generation counters of the page(s) it spans.  Later visits
execute the pre-decoded block without touching the decoder.  A write to
any stamped page — including ABOM's ``cmpxchg`` patches landing on live
text (§4.4) — invalidates the block before its next execution, so
self-modifying code is always observed.  On top of the block cache sits
a **trace cache** (:mod:`repro.arch.tracecache`): hot block chains are
stitched into superblocks and compiled into specialized Python functions
dispatched from :meth:`CPU.run`, with guard checks bailing back to the
interpreter at the exact RIP.  See ``docs/interpreter_performance.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.arch.encoding import (
    ALL_MNEMONICS,
    BLOCK_TERMINATORS,
    Instruction,
    InvalidOpcode,
    decode,
)
from repro.arch.memory import PAGE_SHIFT, PAGE_SIZE, PagedMemory, PageFault
from repro.arch.registers import Reg, RegisterFile, to_signed64
from repro.arch.tracecache import TraceCache, TraceStats

MASK64 = (1 << 64) - 1
MAX_INSTR_LEN = 15
#: Straight-line decode stops after this many instructions per block.
MAX_BLOCK_INSTRS = 64


class TrapKind(enum.Enum):
    SYSCALL = "syscall"
    INVALID_OPCODE = "invalid_opcode"
    BREAKPOINT = "breakpoint"
    PAGE_FAULT = "page_fault"


class Trap(Exception):
    """An architectural trap delivered to the platform's kernel model."""

    def __init__(self, kind: TrapKind, rip: int, detail: str = "") -> None:
        super().__init__(f"{kind.value} at {rip:#x} {detail}".strip())
        self.kind = kind
        self.rip = rip
        self.detail = detail


class CpuHalted(Exception):
    """Raised by :meth:`CPU.run` when the program halts (hlt / exit)."""


TrapHandler = Callable[["CPU", Trap], None]
NativeStub = Callable[["CPU"], None]


# ----------------------------------------------------------------------
# Semantics handlers (table-driven dispatch)
#
# One function per mnemonic, resolved once at decode time and stored on
# the cached block, replacing the former ~30-arm if/elif chain.  Every
# handler receives the pre-computed fall-through address and is
# responsible for setting ``regs.rip`` (taken branches override it).
# ----------------------------------------------------------------------
def _h_nop(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    cpu.regs.rip = next_rip


def _h_hlt(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    cpu.halted = True


def _h_syscall(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    # Deliver BEFORE advancing RIP: handlers (the X-Kernel's ABOM hook in
    # particular) need the syscall instruction's address.
    cpu._deliver(Trap(TrapKind.SYSCALL, cpu.regs.rip))


def _h_int3(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    cpu._deliver(Trap(TrapKind.BREAKPOINT, cpu.regs.rip))


def _h_mov_r32_imm32(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    reg, imm = instr.operands
    cpu.regs.write32(reg, imm)
    cpu.regs.rip = next_rip


def _h_mov_r64_imm32(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    reg, imm = instr.operands
    cpu.regs.write64(reg, imm & MASK64)
    cpu.regs.rip = next_rip


def _h_mov_r64_r64(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    dst, src = instr.operands
    cpu.regs.write64(dst, cpu.regs.read64(src))
    cpu.regs.rip = next_rip


def _h_mov_r32_r32(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    dst, src = instr.operands
    cpu.regs.write32(dst, cpu.regs.read32(src))
    cpu.regs.rip = next_rip


def _h_mov_r32_rsp_disp8(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    reg, disp = instr.operands
    cpu.regs.write32(reg, cpu.mem.read_u32((cpu.regs.rsp + disp) & MASK64))
    cpu.regs.rip = next_rip


def _h_mov_r64_rsp_disp8(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    reg, disp = instr.operands
    cpu.regs.write64(reg, cpu.mem.read_u64((cpu.regs.rsp + disp) & MASK64))
    cpu.regs.rip = next_rip


def _h_mov_rsp_disp8_r32(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    disp, reg = instr.operands
    cpu.mem.write_u32((cpu.regs.rsp + disp) & MASK64, cpu.regs.read32(reg))
    cpu.regs.rip = next_rip


def _h_mov_rsp_disp8_r64(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    disp, reg = instr.operands
    cpu.mem.write_u64((cpu.regs.rsp + disp) & MASK64, cpu.regs.read64(reg))
    cpu.regs.rip = next_rip


def _h_push_r64(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    (reg,) = instr.operands
    cpu.push64(cpu.regs.read64(reg))
    cpu.regs.rip = next_rip


def _h_pop_r64(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    (reg,) = instr.operands
    cpu.regs.write64(reg, cpu.pop64())
    cpu.regs.rip = next_rip


def _h_ret(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    cpu.regs.rip = cpu.pop64()


def _h_call_rel32(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    (rel,) = instr.operands
    cpu.push64(next_rip)
    cpu.regs.rip = (next_rip + rel) & MASK64


def _h_call_abs_ind(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    (slot_addr,) = instr.operands
    target = cpu.mem.read_u64(slot_addr)
    cpu.push64(next_rip)
    cpu.regs.rip = target


def _h_jmp_rel(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    (rel,) = instr.operands
    cpu.regs.rip = (next_rip + rel) & MASK64


def _h_je_rel8(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    (rel,) = instr.operands
    cpu.regs.rip = (next_rip + rel) & MASK64 if cpu.regs.zf else next_rip


def _h_jne_rel8(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    (rel,) = instr.operands
    cpu.regs.rip = next_rip if cpu.regs.zf else (next_rip + rel) & MASK64


def _h_jl_rel8(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    (rel,) = instr.operands
    cpu.regs.rip = (next_rip + rel) & MASK64 if cpu.regs.sf else next_rip


def _h_jg_rel8(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    (rel,) = instr.operands
    taken = not cpu.regs.sf and not cpu.regs.zf
    cpu.regs.rip = (next_rip + rel) & MASK64 if taken else next_rip


def _h_add_r64_imm8(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    reg, imm = instr.operands
    result = (cpu.regs.read64(reg) + imm) & MASK64
    cpu.regs.write64(reg, result)
    cpu._set_flags(result)
    cpu.regs.rip = next_rip


def _h_sub_r64_imm8(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    reg, imm = instr.operands
    result = (cpu.regs.read64(reg) - imm) & MASK64
    cpu.regs.write64(reg, result)
    cpu._set_flags(result)
    cpu.regs.rip = next_rip


def _h_cmp_r64_imm8(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    reg, imm = instr.operands
    value = cpu.regs.read64(reg)
    result = (value - imm) & MASK64
    cpu._set_flags(result)
    cpu.regs.cf = value < (imm & MASK64)
    cpu.regs.rip = next_rip


def _h_inc_r64(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    (reg,) = instr.operands
    result = (cpu.regs.read64(reg) + 1) & MASK64
    cpu.regs.write64(reg, result)
    cpu._set_flags(result)
    cpu.regs.rip = next_rip


def _h_dec_r64(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    (reg,) = instr.operands
    result = (cpu.regs.read64(reg) - 1) & MASK64
    cpu.regs.write64(reg, result)
    cpu._set_flags(result)
    cpu.regs.rip = next_rip


def _h_xor_r32_r32(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    dst, src = instr.operands
    result = cpu.regs.read32(dst) ^ cpu.regs.read32(src)
    cpu.regs.write32(dst, result)
    cpu._set_flags(result)
    cpu.regs.rip = next_rip


def _h_xor_r64_r64(cpu: "CPU", instr: Instruction, next_rip: int) -> None:
    dst, src = instr.operands
    result = cpu.regs.read64(dst) ^ cpu.regs.read64(src)
    cpu.regs.write64(dst, result)
    cpu._set_flags(result)
    cpu.regs.rip = next_rip


InstrHandler = Callable[["CPU", Instruction, int], None]

HANDLERS: dict[str, InstrHandler] = {
    "nop": _h_nop,
    "hlt": _h_hlt,
    "syscall": _h_syscall,
    "int3": _h_int3,
    "mov_r32_imm32": _h_mov_r32_imm32,
    "mov_r64_imm32": _h_mov_r64_imm32,
    "mov_r64_r64": _h_mov_r64_r64,
    "mov_r32_r32": _h_mov_r32_r32,
    "mov_r32_rsp_disp8": _h_mov_r32_rsp_disp8,
    "mov_r64_rsp_disp8": _h_mov_r64_rsp_disp8,
    "mov_rsp_disp8_r32": _h_mov_rsp_disp8_r32,
    "mov_rsp_disp8_r64": _h_mov_rsp_disp8_r64,
    "push_r64": _h_push_r64,
    "pop_r64": _h_pop_r64,
    "ret": _h_ret,
    "call_rel32": _h_call_rel32,
    "call_abs_ind": _h_call_abs_ind,
    "jmp_rel8": _h_jmp_rel,
    "jmp_rel32": _h_jmp_rel,
    "je_rel8": _h_je_rel8,
    "jne_rel8": _h_jne_rel8,
    "jl_rel8": _h_jl_rel8,
    "jg_rel8": _h_jg_rel8,
    "add_r64_imm8": _h_add_r64_imm8,
    "sub_r64_imm8": _h_sub_r64_imm8,
    "cmp_r64_imm8": _h_cmp_r64_imm8,
    "inc_r64": _h_inc_r64,
    "dec_r64": _h_dec_r64,
    "xor_r32_r32": _h_xor_r32_r32,
    "xor_r64_r64": _h_xor_r64_r64,
}

assert set(HANDLERS) == ALL_MNEMONICS, "decoder and executor out of sync"


# ----------------------------------------------------------------------
# Decode cache
# ----------------------------------------------------------------------
@dataclass
class ICacheStats:
    """Decode-cache counters, exposed for benchmarks and perf reporting.

    ``hits`` counts instructions executed from cached blocks, ``misses``
    counts block decodes (cache fills), and ``invalidations`` counts
    blocks dropped because a store (or permission change) touched one of
    the pages they were decoded from.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class _Block:
    """A decoded straight-line run of instructions.

    ``ops`` holds ``(addr, handler, instr, next_rip)`` tuples; ``pages``
    the ``(page_index, generation)`` stamps of every page the block's
    bytes span.  ``live`` flips to False on eviction so an executing
    cursor holding a reference abandons the block mid-run — the moment an
    ABOM patch lands on the current block, the very next instruction is
    re-fetched from the rewritten bytes.
    """

    __slots__ = ("start", "ops", "pages", "live")

    def __init__(self, start, ops, pages) -> None:
        self.start = start
        self.ops = ops
        self.pages = pages
        self.live = True


class CPU:
    """Interprets the instruction subset over paged memory."""

    def __init__(
        self,
        memory: PagedMemory,
        clock=None,
        instruction_ns: float = 0.0,
        icache: bool = True,
        tracecache: bool = True,
    ) -> None:
        self.mem = memory
        self.regs = RegisterFile()
        self.clock = clock
        self.instruction_ns = instruction_ns
        self.trap_handler: Optional[TrapHandler] = None
        self.native_stubs: dict[int, NativeStub] = {}
        self.instructions_retired = 0
        self.halted = False
        #: Optional :class:`repro.sanitize.suite.SanitizerSuite`; block
        #: decode reports an exec access for the race detector.  ``None``
        #: keeps the hook a single attribute test on the cold decode path.
        self.sanitizer = None
        #: Name this CPU's accesses are attributed to by the sanitizers.
        self.actor = "cpu"
        self.icache_enabled = icache
        self.icache_stats = ICacheStats()
        self.trace_stats = TraceStats()
        #: Cached blocks keyed by start address.
        self._blocks: dict[int, _Block] = {}
        #: page index -> start addresses of blocks decoded from that page.
        self._page_blocks: dict[int, set[int]] = {}
        #: (block, next op index) continuation for straight-line execution.
        self._cursor: Optional[tuple[_Block, int]] = None
        # The trace cache profiles block entries observed by the icache,
        # so it requires the icache to be enabled.
        self._tracecache: Optional[TraceCache] = (
            TraceCache(self, stats=self.trace_stats)
            if icache and tracecache
            else None
        )
        if icache:
            memory.add_write_observer(self._invalidate_written)

    # ------------------------------------------------------------------
    # Stack helpers
    # ------------------------------------------------------------------
    def push64(self, value: int) -> None:
        self.regs.rsp = (self.regs.rsp - 8) & MASK64
        self.mem.write_u64(self.regs.rsp, value)

    def pop64(self) -> int:
        value = self.mem.read_u64(self.regs.rsp)
        self.regs.rsp = (self.regs.rsp + 8) & MASK64
        return value

    # ------------------------------------------------------------------
    # Fetch/decode
    # ------------------------------------------------------------------
    def _fetch_window(self, addr: int, size: int = MAX_INSTR_LEN) -> bytes:
        """Read up to ``size`` executable bytes starting at ``addr``."""
        try:
            window = self.mem.fetch(addr, size)
        except PageFault as exc:
            raise Trap(TrapKind.PAGE_FAULT, addr, exc.reason) from None
        return window

    def decode_at(self, addr: int) -> Instruction:
        window = self._fetch_window(addr)
        return decode(window, 0)

    # ------------------------------------------------------------------
    # Decode cache
    # ------------------------------------------------------------------
    def _cached_op(self, rip: int):
        """The pre-decoded op at ``rip``, or None on a cache miss."""
        cursor = self._cursor
        if cursor is not None:
            block, index = cursor
            if block.live and index < len(block.ops):
                op = block.ops[index]
                if op[0] == rip:
                    self._cursor = (block, index + 1)
                    self.icache_stats.hits += 1
                    return op
            self._cursor = None
        block = self._blocks.get(rip)
        if block is None:
            return None
        # Generation check: the write observer evicts eagerly, but a block
        # can also go stale without an observed store (e.g. this CPU was
        # attached after another mutated the text).  Stamps are the
        # ground truth; the observer is the fast path.
        generation_of = self.mem.page_generation_index
        for index, stamp in block.pages:
            if generation_of(index) != stamp:
                self._evict(block)
                self.icache_stats.invalidations += 1
                return None
        self._cursor = (block, 1)
        self.icache_stats.hits += 1
        tc = self._tracecache
        if tc is not None:
            tc.note_block(rip)
        return block.ops[0]

    def _fill_block(self, rip: int) -> _Block:
        """Decode a basic block starting at ``rip`` and cache it.

        Decoding runs straight-line until a control transfer, trap
        instruction, page boundary, native-stub address, or undecodable
        bytes.  Raises :class:`InvalidOpcode` when the *first* instruction
        is undecodable (the caller delivers #UD) and :class:`Trap` when
        the fetch itself faults.
        """
        self.icache_stats.misses += 1
        mem = self.mem
        page_end = (rip & ~(PAGE_SIZE - 1)) + PAGE_SIZE
        window = self._fetch_window(rip, (page_end - rip) + MAX_INSTR_LEN)
        stubs = self.native_stubs
        ops = []
        offset = 0
        while True:
            addr = rip + offset
            if addr >= page_end:
                break
            if ops and addr in stubs:
                break
            try:
                instr = decode(window, offset)
            except InvalidOpcode:
                if not ops:
                    raise
                break
            offset += instr.length
            ops.append((addr, HANDLERS[instr.mnemonic], instr, rip + offset))
            if instr.mnemonic in BLOCK_TERMINATORS or len(ops) >= MAX_BLOCK_INSTRS:
                break
        first_page = rip >> PAGE_SHIFT
        last_page = (rip + offset - 1) >> PAGE_SHIFT
        pages = tuple(
            (index, mem.page_generation_index(index))
            for index in range(first_page, last_page + 1)
        )
        block = _Block(rip, ops, pages)
        self._blocks[rip] = block
        for index, _ in pages:
            self._page_blocks.setdefault(index, set()).add(rip)
        san = self.sanitizer
        if san is not None:
            # Decode is the moment text bytes are consumed; the exec
            # access synchronizes on the per-page generation channel.
            san.on_exec(self.actor, rip, max(offset, 1))
        return block

    def _evict(self, block: _Block) -> None:
        block.live = False
        self._blocks.pop(block.start, None)
        for index, _ in block.pages:
            starts = self._page_blocks.get(index)
            if starts is not None:
                starts.discard(block.start)
                if not starts:
                    del self._page_blocks[index]

    def _invalidate_written(self, addr: int, size: int) -> None:
        """Write-observer hook: drop blocks decoded from written pages."""
        tc = self._tracecache
        if tc is not None and (tc.traces or tc.failed):
            tc.invalidate_range(addr >> PAGE_SHIFT, (addr + size - 1) >> PAGE_SHIFT)
        page_blocks = self._page_blocks
        if not page_blocks:
            return
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        for index in range(first, last + 1):
            starts = page_blocks.get(index)
            if not starts:
                continue
            for start in list(starts):
                block = self._blocks.get(start)
                if block is not None:
                    self._evict(block)
                    self.icache_stats.invalidations += 1

    def flush_icache(self) -> None:
        """Drop every cached block and trace (counters are preserved)."""
        for block in list(self._blocks.values()):
            block.live = False
        self._blocks.clear()
        self._page_blocks.clear()
        self._cursor = None
        if self._tracecache is not None:
            self._tracecache.flush()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction (or one native stub)."""
        if self.halted:
            raise CpuHalted()
        rip = self.regs.rip
        stub = self.native_stubs.get(rip)
        if stub is not None:
            stub(self)
            self._charge()
            return
        if self.icache_enabled:
            op = self._cached_op(rip)
            if op is None:
                try:
                    block = self._fill_block(rip)
                except InvalidOpcode as exc:
                    self._deliver(
                        Trap(TrapKind.INVALID_OPCODE, rip, f"byte {exc.byte:#04x}")
                    )
                    self._charge()
                    return
                self._cursor = (block, 1)
                op = block.ops[0]
                tc = self._tracecache
                if tc is not None:
                    tc.note_block(rip)
            op[1](self, op[2], op[3])
            self._charge()
            return
        try:
            instr = self.decode_at(rip)
        except InvalidOpcode as exc:
            self._deliver(
                Trap(TrapKind.INVALID_OPCODE, rip, f"byte {exc.byte:#04x}")
            )
            self._charge()
            return
        self._execute(instr)
        self._charge()

    def run(self, max_instructions: int = 10_000_000) -> int:
        """Run until halt; returns instructions retired in this call.

        This is the only dispatch point for compiled traces: ``step()``
        keeps strict one-instruction granularity (``run_concurrent``'s
        quantum interleaving depends on it), while ``run`` may retire a
        whole superblock per iteration.  A trace entry that returns 0
        (stale stamps, insufficient fuel) falls through to ``step()`` so
        forward progress is always made.
        """
        start = self.instructions_retired
        tc = self._tracecache
        while not self.halted:
            executed = self.instructions_retired - start
            if executed >= max_instructions:
                raise RuntimeError(
                    f"instruction budget exhausted ({max_instructions})"
                )
            if tc is not None and tc.traces:
                if tc.execute(self.regs.rip, max_instructions - executed):
                    continue
            self.step()
        return self.instructions_retired - start

    def _charge(self) -> None:
        self.instructions_retired += 1
        if self.clock is not None and self.instruction_ns:
            self.clock.advance(self.instruction_ns)

    def _deliver(self, trap: Trap) -> None:
        if self.trap_handler is None:
            raise trap
        self.trap_handler(self, trap)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def _execute(self, instr: Instruction) -> None:
        handler = HANDLERS.get(instr.mnemonic)
        if handler is None:  # pragma: no cover - HANDLERS covers the decoder
            raise NotImplementedError(f"no semantics for {instr.mnemonic}")
        handler(self, instr, self.regs.rip + instr.length)

    def _set_flags(self, result: int) -> None:
        self.regs.zf = result == 0
        self.regs.sf = to_signed64(result) < 0
