"""Sanitizer run reports — deterministic, diffable, CI-gateable.

Mirrors ``repro.faults.report``: one frozen :class:`SanitizeUnit` per
sanitized target (chaos scenario, workload, or fixture), one frozen
:class:`SanitizeReport` per run, byte-identical renders for the same
seed.  ``repro sanitize`` exits non-zero iff :attr:`SanitizeReport.clean`
is False.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.safety import Finding

_RULE = "-" * 72


@dataclass(frozen=True)
class SanitizeUnit:
    """Sanitizer outcome for one target (scenario/workload/fixture)."""

    name: str
    outcome: str
    stats: tuple[tuple[str, int], ...]
    findings: tuple[Finding, ...]

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "outcome": self.outcome,
            "stats": {k: v for k, v in self.stats},
            "findings": [
                {
                    "severity": f.severity.name,
                    "kind": f.kind,
                    "site": f.site,
                    "message": f.message,
                }
                for f in self.findings
            ],
            "clean": self.clean,
        }


@dataclass(frozen=True)
class SanitizeReport:
    """All sanitized units for one run seed."""

    seed: int | str
    units: tuple[SanitizeUnit, ...]

    @property
    def clean(self) -> bool:
        return all(unit.clean for unit in self.units)

    @property
    def total_findings(self) -> int:
        return sum(len(unit.findings) for unit in self.units)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "units": [unit.as_dict() for unit in self.units],
            "total_findings": self.total_findings,
            "clean": self.clean,
        }

    def render(self) -> str:
        lines = [
            f"sanitize run  seed={self.seed}  units={len(self.units)}",
            _RULE,
            f"{'unit':<34}{'outcome':<20}{'findings':>10}",
            _RULE,
        ]
        for unit in self.units:
            lines.append(
                f"{unit.name:<34}{unit.outcome:<20}{len(unit.findings):>10}"
            )
            for key, value in unit.stats:
                if value:
                    lines.append(f"    {key} = {value}")
            for finding in unit.findings:
                lines.append(f"    !! {finding.render()}")
        lines.append(_RULE)
        verdict = (
            "CLEAN"
            if self.clean
            else f"FINDINGS: {self.total_findings} in "
            + ", ".join(u.name for u in self.units if not u.clean)
        )
        lines.append(verdict)
        return "\n".join(lines) + "\n"
