"""Sanitized end-to-end runs: chaos catalog and fig workloads.

``sanitize_chaos`` replays the shipped chaos catalog with a fresh
:class:`~repro.sanitize.suite.SanitizerSuite` wired into every scenario's
substrates — the acceptance bar is that injected faults the retry paths
recover from leave the sanitizers *clean* (a dropped kick that gets
re-kicked is a counter, not a finding).

``sanitize_workloads`` drives the fig3 request profiles (NGINX,
memcached, Redis) and a fig8-style scale-out pass through the real Xen
substrates — split net/block rings, grant copy windows, event channels,
domain create/destroy, and a two-vCPU container with ABOM patching live
text — all under the full suite.  The fig experiment modules themselves
are closed analytic models; their workload profiles are sanitized here
at the substrate level, where the shared-memory protocols actually run.
"""

from __future__ import annotations

from repro.sanitize.fixtures import run_fixtures
from repro.sanitize.report import SanitizeReport, SanitizeUnit
from repro.sanitize.suite import SanitizerSuite


def sanitize_chaos(
    seed: int | str = 0, names: list[str] | None = None
) -> list[SanitizeUnit]:
    """Run the chaos catalog under ``seed`` with all sanitizers attached."""
    from repro.faults.chaos import ChaosHarness
    from repro.faults.registry import get_scenario, scenario_names

    harness = ChaosHarness(seed)
    selected = names if names is not None else scenario_names()
    units = []
    for name in selected:
        suite = SanitizerSuite()
        result = harness.run(get_scenario(name), sanitizers=suite)
        suite.finish()
        units.append(
            SanitizeUnit(
                name=f"chaos:{name}",
                outcome=result.outcome,
                stats=suite.stats(),
                findings=tuple(suite.findings),
            )
        )
    return units


def _profile_unit(name: str, bytes_in: int, bytes_out: int) -> SanitizeUnit:
    """One fig3 profile through the real split-driver substrates."""
    from repro.perf.clock import SimClock
    from repro.xen.blkdev import SECTOR_SIZE, BlockStore, SplitBlockDriver
    from repro.xen.drivers import SplitNetDriver
    from repro.xen.events import EventChannelTable
    from repro.xen.hypervisor import DomainKind, XenHypervisor

    suite = SanitizerSuite()
    clock = SimClock()
    xen = XenHypervisor(clock=clock)
    xen.grants.sanitizer = suite
    guest = xen.create_domain(f"{name}-xc")
    backend = xen.create_domain("driver", DomainKind.DRIVER)
    events = EventChannelTable(xen.costs, clock, sanitizer=suite)
    net = SplitNetDriver(
        guest, backend, xen.grants, events, xen.costs, clock, sanitizer=suite
    )
    blk = SplitBlockDriver(
        BlockStore(4096), xen.costs, clock, sanitizer=suite
    )
    payload = bytes_in + bytes_out
    # Request trains through the net ring (batched, one kick per train).
    for _ in range(20):
        net.transmit_batch([payload] * 16)
    # Access-log style block writes, then a read-back pass.
    blk.write_many(
        [(sector, b"\x5a" * SECTOR_SIZE) for sector in range(0, 64, 4)]
    )
    blk.read_many([(sector, 1) for sector in range(0, 64, 4)])
    # A grant copy window (GNTTABOP_copy batch) opened and closed cleanly.
    ref = xen.grants.grant_access(guest.domid, 0xD000)
    xen.grants.map_grant(ref, backend.domid)
    xen.grants.copy_grant_batch(ref, backend.domid, [bytes_out] * 8)
    xen.grants.unmap_grant(ref, backend.domid)
    xen.grants.end_access(ref)
    net.close()
    xen.destroy_domain(guest.domid)
    xen.destroy_domain(backend.domid)
    suite.finish()
    return SanitizeUnit(
        name=f"workload:{name}",
        outcome="completed",
        stats=suite.stats(),
        findings=tuple(suite.findings),
    )


def _scaleout_unit() -> SanitizeUnit:
    """fig8-style pass: container burst + two vCPUs on ABOM-patched text."""
    from repro.arch import Assembler, Reg
    from repro.core import CountingServices, XContainer
    from repro.xen.hypervisor import XenHypervisor
    from repro.xen.toolstack import Toolstack

    suite = SanitizerSuite()
    # Domain burst: create and tear down like the 400-container sweep.
    xen = XenHypervisor()
    xen.grants.sanitizer = suite
    toolstack = Toolstack(xen)
    created = [
        toolstack.create(f"xc{index}", memory_mb=256, full_vm_boot=False)
        for index in range(8)
    ]
    for creation in created:
        toolstack.destroy(creation.domain.domid)
    # Two vCPUs executing the SAME text while ABOM patches it live: the
    # cmpxchg/page-generation protocol must keep the race detector clean.
    xc = XContainer(
        CountingServices(results={}), vcpus=2, sanitizers=suite
    )
    cpu1 = xc.add_vcpu()
    asm = Assembler()
    asm.mov_imm32(Reg.RBX, 6)
    asm.label("loop")
    asm.syscall_site(39, style="mov_eax")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    binary = asm.build()
    xc.load(binary)
    xc.run_concurrent([(xc.cpu, binary.entry), (cpu1, binary.entry)])
    suite.finish()
    return SanitizeUnit(
        name="workload:scaleout",
        outcome="completed",
        stats=suite.stats(),
        findings=tuple(suite.findings),
    )


def sanitize_workloads(seed: int | str = 0) -> list[SanitizeUnit]:
    """fig3 request profiles + fig8 scale-out, all sanitizers attached."""
    from repro.workloads.profiles import MEMCACHED, NGINX, REDIS

    units = [
        _profile_unit("nginx", NGINX.bytes_in, NGINX.bytes_out),
        _profile_unit("memcached", MEMCACHED.bytes_in, MEMCACHED.bytes_out),
        _profile_unit("redis", REDIS.bytes_in, REDIS.bytes_out),
        _scaleout_unit(),
    ]
    return units


def run_sanitize(
    seed: int | str = 0,
    target: str = "all",
    names: list[str] | None = None,
) -> SanitizeReport:
    """Build the report for ``repro sanitize``.

    ``target`` selects what to sanitize: ``chaos``, ``workloads``,
    ``fixtures`` (the seeded-race units, which SHOULD have findings), or
    ``all`` (chaos + workloads — the clean-run CI gate).
    """
    units: list[SanitizeUnit] = []
    if target in ("chaos", "all"):
        units.extend(sanitize_chaos(seed, names))
    if target in ("workloads", "all"):
        units.extend(sanitize_workloads(seed))
    if target == "fixtures":
        units.extend(run_fixtures())
    if not units:
        raise ValueError(
            f"unknown sanitize target {target!r} "
            "(expected chaos, workloads, fixtures, or all)"
        )
    return SanitizeReport(seed=seed, units=tuple(units))
