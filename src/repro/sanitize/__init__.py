"""Cross-vCPU sanitizer suite (always-deterministic dynamic checkers).

Three checkers ride the existing substrate hooks, off by default and
costing one attribute test when disabled:

* :class:`~repro.sanitize.race.RaceDetector` — happens-before data-race
  detection over shared pages (ring slots, grant frames, SMC text) with
  per-actor vector clocks advanced by the model's real sync edges;
* :class:`~repro.sanitize.grants.GrantSanitizer` — LSan-style grant
  lifecycle balance (double-grant, use-after-end, double-unmap, leaks
  at domain destroy);
* :class:`~repro.sanitize.protocol.ProtocolChecker` — event/ring
  protocol violations (lost-wakeup windows, descriptor reuse before
  response consumption).

:class:`~repro.sanitize.suite.SanitizerSuite` bundles them behind one
wiring surface; :mod:`~repro.sanitize.harness` runs the chaos catalog
and fig workloads under the suite (``repro sanitize``); and
:mod:`~repro.sanitize.fixtures` holds the seeded-race units each
checker must flag.
"""

from repro.sanitize.fixtures import FIXTURES, run_fixtures
from repro.sanitize.grants import GrantSanitizer
from repro.sanitize.harness import (
    run_sanitize,
    sanitize_chaos,
    sanitize_workloads,
)
from repro.sanitize.protocol import ProtocolChecker
from repro.sanitize.race import RaceDetector
from repro.sanitize.report import SanitizeReport, SanitizeUnit
from repro.sanitize.suite import SanitizerSuite

__all__ = [
    "FIXTURES",
    "GrantSanitizer",
    "ProtocolChecker",
    "RaceDetector",
    "SanitizeReport",
    "SanitizeUnit",
    "SanitizerSuite",
    "run_fixtures",
    "run_sanitize",
    "sanitize_chaos",
    "sanitize_workloads",
]
