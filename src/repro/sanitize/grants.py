"""Grant-lifecycle sanitizer (LSan-style).

Mirrors the grant table's per-reference state machine and flags the
misuse classes §3.3's shared-memory channels are exposed to:

* **double-unmap** — unmapping a reference the mapper does not hold;
* **use-after-end** — mapping or copying through a reference after
  ``end_access`` retired it (the TOCTOU window of a revoked grant);
* **double-grant** — granting the same (owner, page) frame twice, which
  would alias two references onto one frame;
* **end-while-mapped** — revoking a grant the backend still has mapped;
* **grant-leak** — references still live (or still mapped by the dying
  domain) when ``destroy_domain`` runs, the LSan moment.

The checker never consults the real :class:`~repro.xen.grant_table.GrantTable`
state — it maintains its own mirror from the hook stream, so a table
bug that corrupts internal state is still caught.
"""

from __future__ import annotations

from repro.analysis.safety import Finding, Severity


class _GrantState:
    __slots__ = ("owner", "page", "mapped_by", "last_unmapper", "ended", "copies")

    def __init__(self, owner: int, page: int) -> None:
        self.owner = owner
        self.page = page
        self.mapped_by: int | None = None
        self.last_unmapper: int | None = None
        self.ended = False
        self.copies = 0


class GrantSanitizer:
    """Shadow grant table fed by hook calls from the real one."""

    def __init__(self) -> None:
        self._grants: dict[int, _GrantState] = {}
        self._frames: dict[tuple[int, int], int] = {}
        self.findings: list[Finding] = []
        # Counters surfaced through repro.obs.
        self.grants_issued = 0
        self.maps = 0
        self.unmaps = 0
        self.copies = 0
        self.ends = 0

    # ------------------------------------------------------------------
    # Hooks (called by GrantTable / XenHypervisor)
    # ------------------------------------------------------------------
    def on_grant(self, ref: int, owner: int, page: int) -> None:
        self.grants_issued += 1
        frame = (owner, page)
        holder = self._frames.get(frame)
        if holder is not None and not self._grants[holder].ended:
            self._find(
                "double-grant",
                page,
                f"dom{owner} granted frame {page:#x} twice "
                f"(refs {holder} and {ref})",
            )
        self._frames[frame] = ref
        self._grants[ref] = _GrantState(owner, page)

    def on_map_attempt(self, ref: int) -> None:
        state = self._grants.get(ref)
        if state is not None and state.ended:
            self._find(
                "grant-use-after-end",
                state.page,
                f"map of ref {ref} after end_access retired it",
            )

    def on_map(self, ref: int, mapper: int) -> None:
        self.maps += 1
        state = self._grants.get(ref)
        if state is not None:
            state.mapped_by = mapper

    def on_unmap_attempt(self, ref: int, mapper: int) -> None:
        """Called only when the real table rejected the unmap.

        An unmap of a never-mapped reference is idempotent reconnect
        cleanup (the driver's ``_restart_backend`` path) — not misuse.
        Misuse is unmapping *again* what the same domain already
        unmapped, or unmapping through a retired reference.
        """
        state = self._grants.get(ref)
        if state is None:
            return
        if state.ended:
            self._find(
                "grant-use-after-end",
                state.page,
                f"unmap of ref {ref} after end_access retired it",
            )
        elif state.mapped_by is None and state.last_unmapper == mapper:
            self._find(
                "grant-double-unmap",
                state.page,
                f"dom{mapper} unmapped ref {ref} twice",
            )

    def on_unmap(self, ref: int) -> None:
        self.unmaps += 1
        state = self._grants.get(ref)
        if state is not None:
            state.last_unmapper = state.mapped_by
            state.mapped_by = None

    def on_copy(self, ref: int) -> None:
        self.copies += 1
        state = self._grants.get(ref)
        if state is None:
            return
        if state.ended:
            self._find(
                "grant-use-after-end",
                state.page,
                f"grant-copy through ref {ref} after end_access retired it",
            )
        state.copies += 1

    def on_end(self, ref: int) -> None:
        self.ends += 1
        state = self._grants.get(ref)
        if state is None:
            return
        if state.ended:
            # The real table ignores end_access of an unknown ref by
            # design, so a second end is idempotent cleanup, not misuse.
            return
        if state.mapped_by is not None:
            # The real table raises and keeps the grant alive, so the
            # mirror must not retire it either.
            self._find(
                "grant-end-while-mapped",
                state.page,
                f"end_access of ref {ref} while dom{state.mapped_by} "
                "still maps it",
            )
            return
        state.ended = True

    def on_domain_destroy(self, domid: int) -> None:
        """LSan moment: every live reference touching ``domid`` is a leak."""
        for ref in sorted(self._grants):
            state = self._grants[ref]
            if state.ended:
                continue
            if state.owner == domid or state.mapped_by == domid:
                role = "owned" if state.owner == domid else "mapped"
                self._find(
                    "grant-leak",
                    state.page,
                    f"ref {ref} ({role} by dom{domid}, frame "
                    f"{state.page:#x}) still live at domain destroy",
                )
                state.ended = True

    # ------------------------------------------------------------------
    def live_refs(self) -> list[int]:
        """References not yet retired (for tests)."""
        return sorted(r for r, s in self._grants.items() if not s.ended)

    def _find(self, kind: str, site: int, message: str) -> None:
        self.findings.append(Finding(Severity.ERROR, kind, site, message))
