"""Happens-before race detector over shared simulated pages.

The detector keeps one vector clock per actor (vCPU name, driver domain,
or the harness ``main`` thread) and advances them on the synchronization
edges the stack already has:

* event-channel send (release) / delivery (acquire);
* ring producer/consumer index publication (release by the publisher,
  acquire by the peer);
* grant map/unmap (release by the granting side, acquire by the mapper);
* ``LOCK``-prefixed stores — ABOM's ``cmpxchg`` — which perform a full
  acquire+release on the per-page channel, the same channel instruction
  fetch (block decode) synchronizes on.  That models the page-generation
  icache protocol: a patch published through ``cmpxchg`` is ordered
  against every later decode of the page, so ABOM is race-free while an
  unsynchronized plain store to executed text is flagged.

Accesses are recorded per *tracked* page in a bounded FIFO so memory use
is O(pages × window) regardless of run length.  A conflict needs an
overlap in bytes, at least one write (exec counts as a read of text;
write-vs-exec conflicts), two different actors, and no happens-before
edge between the recorded access and the current actor's clock.
"""

from __future__ import annotations

from repro.analysis.safety import Finding, Severity
from repro.sanitize.vclock import VClock, vc_fresh, vc_join

PAGE_SHIFT = 12

#: Kinds of recorded accesses.  ``exec`` conflicts with writes only.
READ = 0
WRITE = 1
EXEC = 2

_KIND_NAMES = ("read", "write", "exec")

#: Bounded per-page access window (FIFO).  Large enough to span the
#: batching the drivers do (ring trains of 64), small enough to bound
#: memory on long runs.
_WINDOW = 64


class _Access:
    __slots__ = ("kind", "actor", "epoch", "lo", "hi")

    def __init__(self, kind: int, actor: str, epoch: int, lo: int, hi: int) -> None:
        self.kind = kind
        self.actor = actor
        self.epoch = epoch
        self.lo = lo
        self.hi = hi


class RaceDetector:
    """FastTrack-style detector: epochs per access, clocks per actor."""

    def __init__(self) -> None:
        self._clocks: dict[str, VClock] = {}
        self._channels: dict[object, VClock] = {}
        self._pages: dict[int, list[_Access]] = {}
        self._reported: set[tuple[int, str, str, int]] = set()
        self.findings: list[Finding] = []
        # Counters surfaced through repro.obs.
        self.accesses_checked = 0
        self.sync_edges = 0

    # ------------------------------------------------------------------
    # Clock plumbing
    # ------------------------------------------------------------------
    def _clock(self, actor: str) -> VClock:
        clock = self._clocks.get(actor)
        if clock is None:
            clock = vc_fresh(actor)
            self._clocks[actor] = clock
        return clock

    def release(self, actor: str, channel: object) -> None:
        """Publish ``actor``'s clock into ``channel`` and tick the actor."""
        clock = self._clock(actor)
        published = self._channels.get(channel)
        if published is None:
            self._channels[channel] = dict(clock)
        else:
            vc_join(published, clock)
        clock[actor] = clock.get(actor, 0) + 1
        self.sync_edges += 1

    def acquire(self, actor: str, channel: object) -> None:
        """Join ``channel``'s published clock into ``actor``'s."""
        published = self._channels.get(channel)
        if published is not None:
            vc_join(self._clock(actor), published)
        self.sync_edges += 1

    def clocks(self) -> dict[str, VClock]:
        """Snapshot of all actor clocks (for tests and reports)."""
        return {actor: dict(clock) for actor, clock in sorted(self._clocks.items())}

    # ------------------------------------------------------------------
    # Page tracking
    # ------------------------------------------------------------------
    def track_page(self, addr: int) -> None:
        """Start recording accesses to the page containing ``addr``."""
        self._pages.setdefault(addr >> PAGE_SHIFT, [])

    def is_tracked(self, addr: int) -> bool:
        return (addr >> PAGE_SHIFT) in self._pages

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def exec_access(self, actor: str, addr: int, size: int) -> None:
        """Instruction fetch/decode of ``[addr, addr+size)``.

        Decode participates in the page-generation coherence protocol, so
        it acquires and releases the per-page channel — a later ``LOCK``
        patch of the page is ordered after it, and vice versa.
        """
        self.track_page(addr)
        if size > 1:
            self.track_page(addr + size - 1)
        for index in self._spanned(addr, size):
            self.acquire(actor, ("page", index))
        self._record(EXEC, actor, addr, size)
        for index in self._spanned(addr, size):
            self.release(actor, ("page", index))

    def locked_write(self, actor: str, addr: int, size: int) -> None:
        """``LOCK``-prefixed store (ABOM's ``cmpxchg``): synchronized write."""
        for index in self._spanned(addr, size):
            self.acquire(actor, ("page", index))
        self._record(WRITE, actor, addr, size)
        for index in self._spanned(addr, size):
            self.release(actor, ("page", index))

    def write(self, actor: str, addr: int, size: int, track: bool = False) -> None:
        """Plain (unsynchronized) store."""
        if track:
            self.track_page(addr)
        self._record(WRITE, actor, addr, size)

    def read(self, actor: str, addr: int, size: int, track: bool = False) -> None:
        """Plain (unsynchronized) load."""
        if track:
            self.track_page(addr)
        self._record(READ, actor, addr, size)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _spanned(addr: int, size: int) -> range:
        return range(addr >> PAGE_SHIFT, (addr + max(size, 1) - 1 >> PAGE_SHIFT) + 1)

    def _record(self, kind: int, actor: str, addr: int, size: int) -> None:
        size = max(size, 1)
        lo, hi = addr, addr + size
        clock = self._clock(actor)
        epoch = clock.get(actor, 0)
        for index in self._spanned(addr, size):
            window = self._pages.get(index)
            if window is None:
                continue
            self.accesses_checked += 1
            for prior in window:
                if prior.actor == actor:
                    continue
                if prior.hi <= lo or prior.lo >= hi:
                    continue
                if not self._conflicting(prior.kind, kind):
                    continue
                if prior.epoch <= clock.get(prior.actor, 0):
                    continue  # ordered: prior happens-before current
                self._report(index, prior, kind, actor, lo)
            window.append(_Access(kind, actor, epoch, lo, hi))
            if len(window) > _WINDOW:
                del window[0]

    @staticmethod
    def _conflicting(a: int, b: int) -> bool:
        if a == WRITE or b == WRITE:
            return True
        return False  # read/read, read/exec, exec/exec are fine

    def _report(
        self, page: int, prior: _Access, kind: int, actor: str, addr: int
    ) -> None:
        pair = (prior.actor, actor) if prior.actor < actor else (actor, prior.actor)
        key = (page, pair[0], pair[1], prior.kind | kind << 2)
        if key in self._reported:
            return
        self._reported.add(key)
        self.findings.append(
            Finding(
                Severity.ERROR,
                "data-race",
                addr,
                f"unordered {_KIND_NAMES[kind]} by {actor} conflicts with "
                f"{_KIND_NAMES[prior.kind]} by {prior.actor} on page "
                f"{page << PAGE_SHIFT:#x}",
            )
        )
