"""Event/ring protocol checker.

Models each split-driver ring as the triple the PR 4 batching contract
is written against::

    prod         descriptors published by the frontend
    cons         responses consumed (reaped) by the frontend
    kicked_upto  highest ``prod`` value covered by a delivered kick

and checks two protocol violations:

* **lost wakeup** — at a quiescence point (consumer goes to sleep, ring
  teardown, end of run) the producer has advanced past both the consumer
  and the last kick: work sits in the ring with no notification pending,
  so the consumer would sleep forever.  A *dropped* kick that the retry
  path re-sends is not a finding — drops are counted, and the check only
  runs at quiescence, after retries had their chance.
* **descriptor reuse** — the producer publishes more than ``size``
  descriptors beyond the consumer, overwriting a slot whose response has
  not been consumed.

Aborted trains (the driver's unwind path after an injected kill) retract
their published-but-unkicked descriptors via :meth:`RingState.abort`, so
a recovered fault leaves the mirror consistent with the driver's own
``_in_flight`` accounting.
"""

from __future__ import annotations

from repro.analysis.safety import Finding, Severity


class RingState:
    __slots__ = (
        "name", "size", "page", "slot_bytes",
        "prod", "cons", "kicked_upto",
        "kicks", "kicks_lost", "aborted",
    )

    def __init__(self, name: str, size: int, page: int, slot_bytes: int) -> None:
        self.name = name
        self.size = size
        self.page = page
        self.slot_bytes = slot_bytes
        self.prod = 0
        self.cons = 0
        self.kicked_upto = 0
        self.kicks = 0
        self.kicks_lost = 0
        self.aborted = 0

    def slot_addr(self, index: int) -> int:
        """Simulated address of descriptor slot ``index`` (mod ring size)."""
        return self.page + (index % self.size) * self.slot_bytes


class ProtocolChecker:
    """Shadow ring/event state machine fed by driver hooks."""

    def __init__(self) -> None:
        self._rings: dict[str, RingState] = {}
        self.findings: list[Finding] = []
        # Counters surfaced through repro.obs.
        self.publishes = 0
        self.consumes = 0
        self.event_sends = 0
        self.event_drops = 0
        self.event_deliveries = 0

    # ------------------------------------------------------------------
    # Ring lifecycle
    # ------------------------------------------------------------------
    def ring_register(
        self, name: str, size: int, page: int, slot_bytes: int
    ) -> RingState:
        ring = self._rings.get(name)
        if ring is None:
            ring = RingState(name, size, page, slot_bytes)
            self._rings[name] = ring
        return ring

    def ring(self, name: str) -> RingState | None:
        return self._rings.get(name)

    def rings(self) -> list[RingState]:
        return [self._rings[name] for name in sorted(self._rings)]

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def ring_publish(self, name: str) -> int:
        """Frontend pushed one descriptor; returns its slot index."""
        ring = self._rings[name]
        index = ring.prod
        ring.prod += 1
        self.publishes += 1
        if ring.prod - ring.cons > ring.size:
            self._find(
                "ring-descriptor-reuse",
                ring.slot_addr(index),
                f"{name}: producer at {ring.prod} overran consumer at "
                f"{ring.cons} (ring size {ring.size}) — descriptor reused "
                "before its response was consumed",
            )
            # Resynchronize so one overrun yields one finding, not a
            # finding per subsequent publish.
            ring.cons = ring.prod - ring.size
        return index

    def ring_kick(self, name: str) -> None:
        """Notification for everything published so far was delivered."""
        ring = self._rings[name]
        ring.kicked_upto = ring.prod
        ring.kicks += 1

    def ring_kick_lost(self, name: str) -> None:
        """A kick was dropped (fault injection).  Counted, not a finding:
        the retry path is expected to re-kick before quiescence."""
        self._rings[name].kicks_lost += 1
        self.event_drops += 1

    def ring_abort(self, name: str, pushed: int) -> None:
        """Unwind ``pushed`` descriptors after a failed train."""
        ring = self._rings[name]
        ring.prod = max(ring.cons, ring.prod - pushed)
        ring.aborted += pushed

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def ring_consume(self, name: str, count: int) -> None:
        ring = self._rings[name]
        ring.cons = min(ring.prod, ring.cons + count)
        self.consumes += count

    def ring_drain(self, name: str) -> None:
        """Backend synchronously drained the ring (the stall path)."""
        ring = self._rings[name]
        self.consumes += ring.prod - ring.cons
        ring.cons = ring.prod
        ring.kicked_upto = ring.prod

    def ring_quiesce(self, name: str) -> None:
        """Consumer is going to sleep (or the run is ending): any
        published-but-unkicked work is now a lost wakeup."""
        ring = self._rings[name]
        if ring.prod > ring.cons and ring.prod > ring.kicked_upto:
            self._find(
                "ring-lost-wakeup",
                ring.slot_addr(ring.cons),
                f"{name}: {ring.prod - ring.cons} descriptors in flight "
                f"but last kick covered only {ring.kicked_upto} of "
                f"{ring.prod} — consumer would sleep forever",
            )
            # One finding per window.
            ring.kicked_upto = ring.prod

    def quiesce_all(self) -> None:
        for name in sorted(self._rings):
            self.ring_quiesce(name)

    # ------------------------------------------------------------------
    # Event-channel accounting
    # ------------------------------------------------------------------
    def on_event_send(self, port: int) -> None:
        self.event_sends += 1

    def on_event_drop(self, port: int) -> None:
        self.event_drops += 1

    def on_event_deliver(self, port: int) -> None:
        self.event_deliveries += 1

    # ------------------------------------------------------------------
    def _find(self, kind: str, site: int, message: str) -> None:
        self.findings.append(Finding(Severity.ERROR, kind, site, message))
