"""The sanitizer suite: one object the substrates hook into.

``SanitizerSuite`` owns the three checkers and presents the narrow
``on_*`` surface the instrumented modules call.  Substrates follow the
same pattern as ``faults``/``telemetry``: they carry a ``sanitizer``
attribute that defaults to ``None``, and every hook site is a single
``if self.sanitizer is not None`` test when disabled — the <2% budget.

Actor attribution: cross-vCPU attribution needs to know *who* is
executing when a memory observer fires.  The execution drivers
(``XContainer.run_concurrent`` et al.) keep :attr:`current_actor`
up to date; hooks with better knowledge (a driver that knows which
domain is frontend and which is backend) pass explicit actors instead.

Synchronization-edge catalog (what advances the vector clocks):

===========================  =======================================
edge                          channel
===========================  =======================================
event send / delivery         ``("evt", port)``
ring kick / reap              ``("ring", name)`` (producer → consumer)
ring reap / next train        ``("ringc", name)`` (consumer → producer)
grant / map,  unmap / end     ``("gnt", ref)``
LOCK cmpxchg and block decode ``("page", page_index)``
===========================  =======================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.safety import Finding
from repro.sanitize.grants import GrantSanitizer
from repro.sanitize.protocol import ProtocolChecker
from repro.sanitize.race import RaceDetector

if TYPE_CHECKING:
    from repro.arch.memory import PagedMemory
    from repro.obs.registry import Registry


class SanitizerSuite:
    """Deterministic cross-vCPU sanitizers over the simulated stack."""

    def __init__(
        self, race: bool = True, grants: bool = True, rings: bool = True
    ) -> None:
        self.race: RaceDetector | None = RaceDetector() if race else None
        self.grants: GrantSanitizer | None = GrantSanitizer() if grants else None
        self.rings: ProtocolChecker | None = ProtocolChecker() if rings else None
        #: Whoever the execution driver says is running right now.
        self.current_actor = "main"
        self._memories: list[tuple[PagedMemory, object, object]] = []

    # ------------------------------------------------------------------
    # Memory attachment (race detector substrate)
    # ------------------------------------------------------------------
    def attach_memory(self, memory: PagedMemory) -> None:
        """Observe plain and LOCK-prefixed stores through ``memory``."""

        def on_write(addr: int, size: int) -> None:
            if memory.in_locked_op:
                return  # the lock observer reports this store
            race = self.race
            if race is not None:
                race.write(self.current_actor, addr, size)

        def on_lock(addr: int, size: int) -> None:
            race = self.race
            if race is not None:
                race.locked_write(self.current_actor, addr, size)

        memory.add_write_observer(on_write)
        memory.add_lock_observer(on_lock)
        self._memories.append((memory, on_write, on_lock))

    def detach(self) -> None:
        """Remove every observer this suite registered."""
        for memory, on_write, on_lock in self._memories:
            memory.remove_write_observer(on_write)  # type: ignore[arg-type]
            memory.remove_lock_observer(on_lock)  # type: ignore[arg-type]
        self._memories.clear()

    # ------------------------------------------------------------------
    # CPU hooks
    # ------------------------------------------------------------------
    def on_exec(self, actor: str, addr: int, size: int) -> None:
        """Basic-block decode of ``[addr, addr+size)`` by ``actor``."""
        if self.race is not None:
            self.race.exec_access(actor, addr, size)

    # ------------------------------------------------------------------
    # Event-channel hooks
    # ------------------------------------------------------------------
    def on_event_send(self, port: int) -> None:
        if self.rings is not None:
            self.rings.on_event_send(port)
        if self.race is not None:
            self.race.release(self.current_actor, ("evt", port))

    def on_event_drop(self, port: int) -> None:
        if self.rings is not None:
            self.rings.on_event_drop(port)

    def on_event_deliver(self, port: int) -> None:
        if self.rings is not None:
            self.rings.on_event_deliver(port)
        if self.race is not None:
            self.race.acquire(self.current_actor, ("evt", port))

    # ------------------------------------------------------------------
    # Ring hooks (split drivers)
    # ------------------------------------------------------------------
    #: Shadow descriptor pages live in their own region of the simulated
    #: address space, one page per ring — two rings can legitimately
    #: grant the same guest-physical frame (each guest's 0xF000), so the
    #: race detector must not alias their slots.
    _SHADOW_RING_BASE = 0xF000_0000

    def ring_register(self, name: str, size: int, slot_bytes: int) -> str:
        """Register a ring; returns the (uniquified) ring name."""
        if self.rings is not None:
            base, n = name, 2
            while self.rings.ring(name) is not None:
                name = f"{base}#{n}"
                n += 1
            page = self._SHADOW_RING_BASE + 0x1000 * len(self.rings.rings())
            self.rings.ring_register(name, size, page, slot_bytes)
            if self.race is not None:
                self.race.track_page(page)
        return name

    def ring_batch_start(self, name: str, producer: str) -> None:
        if self.race is not None:
            self.race.acquire(producer, ("ringc", name))

    def ring_publish(self, name: str, producer: str) -> None:
        rings = self.rings
        if rings is not None:
            index = rings.ring_publish(name)
            ring = rings.ring(name)
            if self.race is not None and ring is not None:
                self.race.write(
                    producer, ring.slot_addr(index), ring.slot_bytes, track=True
                )

    def ring_kick(self, name: str, producer: str) -> None:
        if self.rings is not None:
            self.rings.ring_kick(name)
        if self.race is not None:
            self.race.release(producer, ("ring", name))

    def ring_kick_lost(self, name: str) -> None:
        if self.rings is not None:
            self.rings.ring_kick_lost(name)

    def ring_abort(self, name: str, pushed: int) -> None:
        if self.rings is not None:
            self.rings.ring_abort(name, pushed)

    def ring_reap(self, name: str, consumer: str, count: int) -> None:
        rings = self.rings
        race = self.race
        if race is not None:
            race.acquire(consumer, ("ring", name))
        if rings is not None:
            ring = rings.ring(name)
            if ring is not None and race is not None:
                for i in range(count):
                    race.read(
                        consumer,
                        ring.slot_addr(ring.cons + i),
                        ring.slot_bytes,
                    )
            rings.ring_consume(name, count)
        if race is not None:
            race.release(consumer, ("ringc", name))

    def ring_stall_drain(self, name: str, producer: str, consumer: str) -> None:
        """Producer hit a full ring; backend drains it synchronously."""
        race = self.race
        if race is not None:
            race.release(producer, ("ring", name))
            race.acquire(consumer, ("ring", name))
        if self.rings is not None:
            self.rings.ring_drain(name)
        if race is not None:
            race.release(consumer, ("ringc", name))
            race.acquire(producer, ("ringc", name))

    def ring_quiesce(self, name: str) -> None:
        if self.rings is not None:
            self.rings.ring_quiesce(name)

    # ------------------------------------------------------------------
    # Grant hooks
    # ------------------------------------------------------------------
    def on_grant(self, ref: int, owner: int, page: int) -> None:
        if self.grants is not None:
            self.grants.on_grant(ref, owner, page)
        if self.race is not None:
            self.race.release(f"dom{owner}", ("gnt", ref))

    def on_map_attempt(self, ref: int) -> None:
        if self.grants is not None:
            self.grants.on_map_attempt(ref)

    def on_map(self, ref: int, mapper: int) -> None:
        if self.grants is not None:
            self.grants.on_map(ref, mapper)
        if self.race is not None:
            self.race.acquire(f"dom{mapper}", ("gnt", ref))

    def on_unmap_attempt(self, ref: int, mapper: int) -> None:
        if self.grants is not None:
            self.grants.on_unmap_attempt(ref, mapper)

    def on_unmap(self, ref: int, mapper: int) -> None:
        if self.grants is not None:
            self.grants.on_unmap(ref)
        if self.race is not None:
            self.race.release(f"dom{mapper}", ("gnt", ref))

    def on_copy(self, ref: int) -> None:
        if self.grants is not None:
            self.grants.on_copy(ref)

    def on_end(self, ref: int, owner: int) -> None:
        """``owner < 0`` means the real table no longer knows the ref
        (the double-end case) — no synchronization edge to draw."""
        if self.race is not None and owner >= 0:
            self.race.acquire(f"dom{owner}", ("gnt", ref))
        if self.grants is not None:
            self.grants.on_end(ref)

    def on_domain_destroy(self, domid: int) -> None:
        if self.grants is not None:
            self.grants.on_domain_destroy(domid)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """End-of-run checks: lost wakeups at final quiescence."""
        if self.rings is not None:
            self.rings.quiesce_all()

    @property
    def findings(self) -> list[Finding]:
        """All findings, deterministically ordered."""
        out: list[Finding] = []
        if self.race is not None:
            out.extend(self.race.findings)
        if self.grants is not None:
            out.extend(self.grants.findings)
        if self.rings is not None:
            out.extend(self.rings.findings)
        return sorted(out, key=lambda f: (f.kind, f.site, f.message))

    def stats(self) -> tuple[tuple[str, int], ...]:
        """Deterministic (name, value) counter pairs for reports."""
        pairs: list[tuple[str, int]] = []
        race = self.race
        if race is not None:
            pairs += [
                ("race_accesses_checked", race.accesses_checked),
                ("race_sync_edges", race.sync_edges),
                ("race_findings", len(race.findings)),
            ]
        grants = self.grants
        if grants is not None:
            pairs += [
                ("grant_grants", grants.grants_issued),
                ("grant_maps", grants.maps),
                ("grant_unmaps", grants.unmaps),
                ("grant_copies", grants.copies),
                ("grant_ends", grants.ends),
                ("grant_findings", len(grants.findings)),
            ]
        rings = self.rings
        if rings is not None:
            pairs += [
                ("ring_publishes", rings.publishes),
                ("ring_consumes", rings.consumes),
                ("event_sends", rings.event_sends),
                ("event_drops", rings.event_drops),
                ("event_deliveries", rings.event_deliveries),
                ("ring_findings", len(rings.findings)),
            ]
        return tuple(pairs)

    def bind_telemetry(self, registry: Registry) -> None:
        from repro.obs.wire import wire_sanitizers

        wire_sanitizers(registry, self)
