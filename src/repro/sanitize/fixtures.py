"""Seeded-race fixtures: known-bad protocol usages each checker must flag.

Each fixture drives *real* substrates into one deliberate violation and
returns a :class:`~repro.sanitize.report.SanitizeUnit` whose findings
must be non-empty and byte-identical across reruns (the acceptance bar).
They double as living documentation of what each checker means by a
violation — and as the regression net proving a refactor didn't silence
a checker.
"""

from __future__ import annotations

from typing import Callable

from repro.sanitize.report import SanitizeUnit
from repro.sanitize.suite import SanitizerSuite


def kickless_producer() -> SanitizeUnit:
    """A frontend publishes a descriptor train but never kicks.

    Models the classic lost-wakeup bug: the producer advances the ring
    index, skips the event-channel notification (believing the consumer
    is awake), and the consumer goes to sleep with work in the ring.
    """
    suite = SanitizerSuite()
    ring = suite.ring_register("net:buggy", 256, 16)
    suite.ring_batch_start(ring, "dom1")
    for _ in range(8):
        suite.ring_publish(ring, "dom1")
    # The bug: no ring_kick before the consumer quiesces.
    suite.ring_quiesce(ring)
    suite.finish()
    return _unit("kickless-producer", suite)


def double_unmap() -> SanitizeUnit:
    """A backend unmaps the same grant reference twice.

    Drives the real :class:`~repro.xen.grant_table.GrantTable`: the
    second unmap raises (the table is defensive), but the sanitizer
    still records the protocol misuse the exception papered over.
    """
    from repro.xen.grant_table import GrantError
    from repro.xen.hypervisor import XenHypervisor

    suite = SanitizerSuite()
    xen = XenHypervisor()
    xen.grants.sanitizer = suite
    guest = xen.create_domain("guest")
    backend = xen.create_domain("backend")
    ref = xen.grants.grant_access(guest.domid, 0xE000)
    xen.grants.map_grant(ref, backend.domid)
    xen.grants.unmap_grant(ref, backend.domid)
    try:
        xen.grants.unmap_grant(ref, backend.domid)  # the bug
    except GrantError:
        pass
    suite.finish()
    return _unit("double-unmap", suite)


def unsynchronized_text_patch() -> SanitizeUnit:
    """A rogue patcher stores to text another vCPU executes — no LOCK.

    ABOM's ``cmpxchg`` path synchronizes on the page-generation channel
    and stays clean; this fixture bypasses it with a plain store (WP
    disabled, like a buggy in-place patcher), which the happens-before
    detector flags as a write/exec race.
    """
    from repro.arch import Assembler, Reg
    from repro.core import CountingServices, XContainer

    suite = SanitizerSuite()
    xc = XContainer(CountingServices(results={}), sanitizers=suite)
    asm = Assembler()
    asm.mov_imm32(Reg.RBX, 4)
    asm.label("loop")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    binary = asm.build()
    xc.run(binary)
    # The bug: a different actor patches the just-executed text with a
    # plain store instead of the LOCK cmpxchg protocol.
    suite.current_actor = "rogue-patcher"
    xc.memory.wp_enabled = False
    try:
        xc.memory.write(binary.entry, b"\x90")
    finally:
        xc.memory.wp_enabled = True
    suite.finish()
    return _unit("unsynchronized-text-patch", suite)


FIXTURES: dict[str, Callable[[], SanitizeUnit]] = {
    "kickless-producer": kickless_producer,
    "double-unmap": double_unmap,
    "unsynchronized-text-patch": unsynchronized_text_patch,
}


def run_fixtures() -> list[SanitizeUnit]:
    """All fixtures, in catalog order."""
    return [FIXTURES[name]() for name in FIXTURES]


def _unit(name: str, suite: SanitizerSuite) -> SanitizeUnit:
    findings = tuple(suite.findings)
    outcome = "finding" if findings else "clean"
    return SanitizeUnit(
        name=name,
        outcome=outcome,
        stats=suite.stats(),
        findings=findings,
    )
