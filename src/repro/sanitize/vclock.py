"""Vector clocks for the happens-before race detector.

Clocks are plain ``dict[str, int]`` maps from actor name to that actor's
logical time.  The module keeps them as free functions over dicts (no
wrapper class) so the detector's hot path stays allocation-light, and
every operation is deterministic: joins iterate the *other* clock's
items, order-independent because ``max`` is commutative, and rendering
sorts keys.

Discipline (standard release/acquire vector clocks):

* each actor owns one component; an access is stamped with the actor's
  current **epoch** (its own component);
* ``release`` publishes a copy of the actor's clock into a channel and
  then ticks the actor, so later accesses are not ordered before the
  release;
* ``acquire`` joins the channel's clock into the actor's, so later
  accesses are ordered after everything the releaser had seen.

An access ``(actor=p, epoch=c)`` happens-before the current state of
actor ``q`` iff ``c <= clock_q[p]`` — the single-comparison FastTrack
check the detector uses per recorded access.
"""

from __future__ import annotations

VClock = dict[str, int]


def vc_fresh(actor: str) -> VClock:
    """A new actor's clock: its own component starts at 1."""
    return {actor: 1}


def vc_join(into: VClock, other: VClock) -> None:
    """``into := into ⊔ other`` (componentwise max), in place."""
    for actor, time in other.items():
        if time > into.get(actor, 0):
            into[actor] = time


def vc_leq(a: VClock, b: VClock) -> bool:
    """``a ≤ b`` componentwise (``a`` happened-before-or-equals ``b``)."""
    for actor, time in a.items():
        if time > b.get(actor, 0):
            return False
    return True


def vc_render(clock: VClock) -> str:
    """Deterministic ``{actor:t, ...}`` rendering (sorted keys)."""
    inner = ", ".join(f"{k}:{clock[k]}" for k in sorted(clock))
    return "{" + inner + "}"
