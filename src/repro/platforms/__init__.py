"""Container-runtime models: the paper's comparison platforms (§5.1)."""

from repro.platforms.base import EmulatedRun, Platform
from repro.platforms.clear import ClearContainerPlatform
from repro.platforms.docker import DockerPlatform
from repro.platforms.graphene import GraphenePlatform
from repro.platforms.gvisor import GVisorPlatform
from repro.platforms.registry import (
    CLOUD_CONFIGURATIONS,
    cloud_configurations,
    get_platform,
    platform_names,
)
from repro.platforms.unikernel import UnikernelPlatform, UnsupportedWorkload
from repro.platforms.x_container import XContainerPlatform
from repro.platforms.xen_container import XenContainerPlatform

__all__ = [
    "Platform",
    "EmulatedRun",
    "DockerPlatform",
    "GVisorPlatform",
    "ClearContainerPlatform",
    "XenContainerPlatform",
    "XContainerPlatform",
    "GraphenePlatform",
    "UnikernelPlatform",
    "UnsupportedWorkload",
    "get_platform",
    "platform_names",
    "cloud_configurations",
    "CLOUD_CONFIGURATIONS",
]
