"""Intel Clear Containers — a dedicated VM per container via KVM.

In a public cloud this requires *nested* hardware virtualization: available
(at a price, [15]) on GCE, absent on EC2 (§1, §5.1).  The guest kernel is
minimal and stays unpatched (§5.1: only the host kernel is patched), which
is why Clear Containers post excellent raw syscall numbers (Fig 4) while
losing the macrobenchmarks to nested-virtualization exit costs (Fig 3).
"""

from __future__ import annotations

from repro.guest.config import KernelConfig
from repro.guest.kernel import GuestKernel, NativeMmu
from repro.guest.netstack import NetDevice
from repro.perf.clock import SimClock
from repro.platforms.base import Platform


class ClearContainerPlatform(Platform):
    name = "Clear-Container"
    multicore_processing = True
    supports_kernel_modules = True  # inside its own guest kernel
    needs_nested_hw_virt = True

    def syscall_cost_ns(self) -> float:
        # Syscalls stay inside the (always unpatched, stripped) guest:
        # "the guest kernel is highly optimized by disabling most security
        # features within a Clear container" (§5.4).
        return self.costs.clear_guest_syscall_ns

    def kernel_work_factor(self) -> float:
        return self.costs.clear_guest_efficiency

    def net_device(self) -> NetDevice:
        return NetDevice.NESTED_VIRTIO

    def net_request_extra_ns(self) -> float:
        # DNAT on the host plus nested VM exits for virtio kicks — the
        # §5.3 "significant performance penalty for using nested hardware
        # virtualization".
        return self.costs.iptables_dnat_ns + self.costs.nested_vmexit_ns

    def make_kernel(self, clock: SimClock | None = None) -> GuestKernel:
        return GuestKernel(
            KernelConfig.clear_guest(), self.costs, clock,
            mmu=NativeMmu(self.costs, clock),
            net_device=NetDevice.NESTED_VIRTIO,
        )

    def spawn_ms(self) -> float:
        # Mini-OS boot + qemu-lite startup per container.
        return self.costs.docker_spawn_ms + 500.0
