"""Xen-Containers — the LightVM-like baseline the paper built (§5.1).

    "Xen-Containers use exactly the same software stack ... as
     X-Containers.  The only difference ... is the underlying hypervisor
     (unmodified Xen vs X-Kernel) and guest kernel (unmodified Linux vs
     X-LibOS)."

So: every syscall pays the stock x86-64 PV bounce (virtual exception
through Xen, page-table switch, TLB flush — §4.1), the guest kernel is an
untuned stock Linux whose page-table updates are validated hypercalls, and
the network path is the split driver.
"""

from __future__ import annotations

from repro.guest.config import KernelConfig
from repro.guest.kernel import GuestKernel, HypercallMmu
from repro.guest.netstack import NetDevice
from repro.perf.clock import SimClock
from repro.platforms.base import Platform
from repro.xen.hypervisor import XenHypervisor


class XenContainerPlatform(Platform):
    name = "Xen-Container"
    multicore_processing = True
    supports_kernel_modules = True  # it owns its guest kernel

    def __init__(self, costs=None, patched: bool = True) -> None:
        super().__init__(costs, patched)
        self.xen = XenHypervisor(self.costs, xpti_patched=patched)

    def syscall_cost_ns(self) -> float:
        return self.xen.pv_syscall_cost_ns()

    def kernel_work_factor(self) -> float:
        # Stock guest Linux under PV: no tuning, plus PV MMU overhead
        # leaking into kernel work.
        return self.costs.xen_guest_efficiency

    def net_device(self) -> NetDevice:
        return NetDevice.NETFRONT

    def make_kernel(self, clock: SimClock | None = None) -> GuestKernel:
        config = KernelConfig(
            name="xen-guest-4.4",
            smp=True,
            kpti=self.patched,
            modules_allowed=True,
        )
        return GuestKernel(
            config, self.costs, clock,
            mmu=HypercallMmu(self.costs, clock),
            net_device=NetDevice.NETFRONT,
        )

    def ctx_switch_cost_ns(self, nr_running: int = 2) -> float:
        # PV guests run with the global bit disabled (§4.3): every process
        # switch is a full flush + kernel refill, and the page-table
        # install is a hypercall.
        return self.xen.context_switch_cost_ns(same_domain=True)

    def spawn_ms(self) -> float:
        # Same Docker wrapper as X-Containers: xl toolstack + guest boot.
        return self.costs.xl_toolstack_ms + self.costs.xlibos_boot_ms
