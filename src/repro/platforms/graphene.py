"""Graphene — a multi-process LibOS over a full host kernel (§5.5, §6.2).

    "in Graphene, processes use IPC calls to coordinate access to a shared
     POSIX library, which incurs high overheads" — the Fig 6b effect.

Single-process Graphene serves syscalls as library calls (cheap-ish through
the PAL); with multiple processes a fraction of syscalls must take an IPC
round-trip to keep the shared POSIX state consistent.  The host kernel
below is a full Linux, so the TCB is not reduced (§6.2) — and the paper's
runs compiled out the security isolation module, which we model as the
default.
"""

from __future__ import annotations

from repro.guest.config import KernelConfig
from repro.guest.kernel import GuestKernel, NativeMmu
from repro.guest.netstack import NetDevice
from repro.perf.clock import SimClock
from repro.platforms.base import Platform

#: Fraction of syscalls touching shared POSIX state (fd tables, signal
#: dispositions, shared memory bookkeeping) that require coordination IPC
#: when more than one process runs.  Anchors X > 1.5× Graphene with four
#: NGINX workers (Fig 6b).
IPC_COORDINATION_FRACTION = 0.25


class GraphenePlatform(Platform):
    name = "Graphene"
    multicore_processing = True  # supported, but expensively (§2.3)
    supports_kernel_modules = False

    def __init__(self, costs=None, patched: bool = True,
                 processes: int = 1) -> None:
        super().__init__(costs, patched)
        if processes < 1:
            raise ValueError(f"processes must be >= 1: {processes}")
        self.processes = processes

    def syscall_cost_ns(self) -> float:
        cost = self.costs.graphene_syscall_ns
        if self.processes > 1:
            cost += IPC_COORDINATION_FRACTION * self.costs.graphene_ipc_ns
        return cost

    def kernel_work_factor(self) -> float:
        return self.costs.graphene_efficiency

    def net_device(self) -> NetDevice:
        # Graphene ran on bare-metal Linux in §5.5 — direct NIC access
        # through the host kernel.
        return NetDevice.DIRECT

    def net_request_extra_ns(self) -> float:
        return 0.0  # no port forwarding in the local-cluster setup (§5.5)

    def make_kernel(self, clock: SimClock | None = None) -> GuestKernel:
        config = KernelConfig(
            name="graphene-libos",
            smp=True,
            kpti=self.patched,
            modules_allowed=False,
        )
        return GuestKernel(
            config, self.costs, clock,
            mmu=NativeMmu(self.costs, clock),
            net_device=NetDevice.DIRECT,
        )

    def spawn_ms(self) -> float:
        return self.costs.docker_spawn_ms * 1.3
