"""Google gVisor — user-space kernel with ptrace syscall interception.

    "gVisor performance suffers significantly from the overhead of using
     ptrace for intercepting system calls" (§5.3); "The throughput of
     gVisor is only 7 to 9% of Docker" (§5.4).

Kernel services are re-implemented in Go by the Sentry (slower than
native), packets traverse its user-space netstack, and — §2.3 — processes
can be spawned but not run concurrently.
"""

from __future__ import annotations

from repro.guest.config import KernelConfig
from repro.guest.kernel import GuestKernel, NativeMmu
from repro.guest.netstack import NetDevice
from repro.perf.clock import SimClock
from repro.platforms.base import Platform


class GVisorPlatform(Platform):
    name = "gVisor"
    #: §2.3: "they can only run a single process at a time even when
    #: multiple CPU cores are available."
    multicore_processing = False
    supports_kernel_modules = False

    def syscall_cost_ns(self) -> float:
        # Two ptrace stops + Sentry dispatch; the ptrace hops are kernel
        # crossings themselves, so the host KPTI patch hurts them too.
        cost = self.costs.gvisor_syscall_ns
        if self.patched:
            cost += self.costs.gvisor_kpti_extra_ns
        return cost

    def kernel_work_factor(self) -> float:
        return self.costs.gvisor_efficiency

    def net_device(self) -> NetDevice:
        return NetDevice.GVISOR

    def make_kernel(self, clock: SimClock | None = None) -> GuestKernel:
        config = KernelConfig(
            name="gvisor-sentry",
            smp=True,
            kpti=self.patched,
            modules_allowed=False,
        )
        return GuestKernel(
            config, self.costs, clock,
            mmu=NativeMmu(self.costs, clock),
            net_device=NetDevice.GVISOR,
        )

    def spawn_ms(self) -> float:
        # runsc adds Sentry + gofer startup on top of runc.
        return self.costs.docker_spawn_ms * 1.6
