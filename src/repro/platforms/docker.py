"""Native Docker on a shared host kernel — the normalization baseline.

Every syscall is a real kernel crossing (plus KPTI when patched); the
network path is veth + bridge with iptables DNAT; process lifecycle uses
native page tables (fast — this is where Docker beats X-Containers, §5.4).
"""

from __future__ import annotations

from repro.guest.config import KernelConfig
from repro.guest.kernel import GuestKernel, NativeMmu
from repro.guest.netstack import NetDevice
from repro.perf.clock import SimClock
from repro.platforms.base import Platform


class DockerPlatform(Platform):
    name = "Docker"
    multicore_processing = True
    supports_kernel_modules = False  # no root on the host kernel (§5.7)

    def syscall_cost_ns(self) -> float:
        cost = self.costs.native_syscall_ns
        if self.patched:
            cost += self.costs.kpti_syscall_extra_ns
        return cost

    def kernel_work_factor(self) -> float:
        # The shared general-purpose kernel is the reference point.
        return self.costs.shared_kernel_efficiency

    def net_device(self) -> NetDevice:
        return NetDevice.BRIDGE

    def make_kernel(self, clock: SimClock | None = None) -> GuestKernel:
        config = KernelConfig.host_default()
        config.kpti = self.patched
        return GuestKernel(
            config, self.costs, clock, mmu=NativeMmu(self.costs, clock)
        )

    def spawn_ms(self) -> float:
        return self.costs.docker_spawn_ms
