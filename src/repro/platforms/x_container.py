"""X-Containers — the paper's platform.

Syscalls: ABOM converts the recognized fraction into function calls
(Table 1 shows >92 % dynamically for everything but MySQL); the remainder
traps into the X-Kernel and is transferred to the X-LibOS in the same
address space.  Neither path touches protected kernel mappings, so the
Meltdown patch changes nothing (§5.4).

Costs that *rise* relative to Docker: page-table updates are validated
hypercalls, so fork/exec/context-switch are slower (§5.4) — but the global
bit on LibOS mappings spares the kernel-range TLB refill on intra-container
switches (§4.3).
"""

from __future__ import annotations

from repro.arch.binary import Binary
from repro.core.xcontainer import XContainer
from repro.guest.config import KernelConfig
from repro.guest.kernel import GuestKernel, HypercallMmu
from repro.guest.netstack import NetDevice
from repro.perf.clock import SimClock
from repro.platforms.base import EmulatedRun, Platform


class XContainerPlatform(Platform):
    name = "X-Container"
    multicore_processing = True
    supports_kernel_modules = True

    def __init__(
        self,
        costs=None,
        patched: bool = True,
        abom_enabled: bool = True,
        converted_fraction: float = 0.97,
        smp: bool = True,
    ) -> None:
        super().__init__(costs, patched)
        self.abom_enabled = abom_enabled
        #: Fraction of dynamic syscall invocations ABOM converts for the
        #: workload at hand (Table 1; measured per application by the
        #: table1 experiment, defaulted here to the typical >92 % band).
        self.converted_fraction = converted_fraction
        self.smp = smp

    def syscall_cost_ns(self) -> float:
        if not self.abom_enabled:
            return self.costs.xc_forwarded_syscall_ns
        f = self.converted_fraction
        return (
            f * self.costs.xc_func_call_syscall_ns
            + (1.0 - f) * self.costs.xc_forwarded_syscall_ns
        )

    def kernel_work_factor(self) -> float:
        return self.costs.xlibos_efficiency

    def net_device(self) -> NetDevice:
        return NetDevice.NETFRONT

    def make_kernel(self, clock: SimClock | None = None) -> GuestKernel:
        config = KernelConfig.xlibos(smp=self.smp)
        return GuestKernel(
            config, self.costs, clock,
            mmu=HypercallMmu(self.costs, clock),
            net_device=NetDevice.NETFRONT,
        )

    def ctx_switch_cost_ns(self, nr_running: int = 2) -> float:
        kernel = self.make_kernel()
        # global_kernel_mappings=True via the xlibos config: no kernel
        # TLB refill, but the page-table install is a hypercall.
        return kernel.runqueue.switch_cost_ns(nr_running)

    def spawn_ms(self) -> float:
        return self.costs.xl_toolstack_ms + self.costs.xlibos_boot_ms

    # ------------------------------------------------------------------
    # Emulated execution uses the REAL X-Container machinery, including
    # ABOM patching real bytes — not the averaged cost above.
    # ------------------------------------------------------------------
    def run_binary(
        self, binary: Binary, clock: SimClock | None = None
    ) -> EmulatedRun:
        clock = clock if clock is not None else SimClock()
        kernel = self.make_kernel(clock)
        xc = XContainer(
            kernel, self.costs, clock, abom_enabled=self.abom_enabled
        )
        result = xc.run(binary)
        return EmulatedRun(
            result.instructions,
            result.elapsed_ns,
            xc.libos.stats.total_syscalls,
        )
