"""Platform abstraction: one model per container runtime under test.

A :class:`Platform` answers, for its runtime, the cost questions every
experiment asks:

* what does one syscall cost (the heart of Fig 4)?
* how is per-request *kernel work* scaled (shared vs dedicated/tuned vs
  reimplemented kernels, §3.2)?
* what does the network path add per request (bridge vs split driver vs
  user-space netstack vs nested virtio, plus DNAT port forwarding)?
* what do context switches and process lifecycle ops cost (Fig 5)?
* can it load kernel modules / run multiple processes (Figs 6 and 9)?

Platforms also build an *emulated runtime* — a CPU interpreter wired with
the platform's trap costs — so the syscall microbenchmarks execute real
machine code down the real paths.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.arch.binary import Binary
from repro.arch.cpu import CPU, Trap, TrapKind
from repro.arch.memory import PagedMemory, PageFlags
from repro.guest.kernel import GuestKernel
from repro.guest.netstack import NetDevice, NetStack
from repro.perf.clock import SimClock
from repro.perf.costs import CostModel


@dataclass
class EmulatedRun:
    instructions: int
    elapsed_ns: float
    syscalls: int


class Platform(abc.ABC):
    """Base class for all runtime models."""

    #: Human-readable runtime name ("Docker", "X-Container", ...).
    name: str = "platform"
    #: Whether multiple processes can run concurrently (§2.3: gVisor/UML
    #: spawn processes but cannot run them concurrently; Unikernel cannot
    #: spawn at all).
    multicore_processing: bool = True
    max_processes: int | None = None
    supports_kernel_modules: bool = False
    #: Platforms needing nested hardware virtualization (Clear Containers)
    #: cannot run on EC2 (§1, §5.1).
    needs_nested_hw_virt: bool = False

    def __init__(
        self,
        costs: CostModel | None = None,
        patched: bool = True,
    ) -> None:
        self.costs = costs or CostModel()
        #: Meltdown patch state of the *relevant* kernel (§5.1 runs every
        #: configuration patched and -unpatched).
        self.patched = patched

    # ------------------------------------------------------------------
    # Cost questions
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def syscall_cost_ns(self) -> float:
        """CPU cost of one syscall on this runtime's syscall path."""

    @abc.abstractmethod
    def kernel_work_factor(self) -> float:
        """Multiplier applied to a workload's per-request kernel work."""

    @abc.abstractmethod
    def net_device(self) -> NetDevice:
        """How server packets traverse into this runtime."""

    def make_netstack(self, kernel: GuestKernel | None = None) -> NetStack:
        stack = NetStack(
            self.costs,
            kernel.config if kernel else self._net_kernel_config(),
            self.net_device(),
        )
        return stack

    def _net_kernel_config(self):
        from repro.guest.config import KernelConfig

        return KernelConfig.host_default()

    def net_request_extra_ns(self) -> float:
        """Forwarding cost outside the serving kernel (DNAT in the host /
        Domain-0, §5.3)."""
        return self.costs.iptables_dnat_ns

    def ctx_switch_cost_ns(self, nr_running: int = 2) -> float:
        """Process context switch on this runtime."""
        kernel = self.make_kernel()
        return kernel.runqueue.switch_cost_ns(nr_running)

    def fork_cost_ns(self) -> float:
        kernel = self.make_kernel()
        clock = SimClock()
        kernel.clock = clock
        kernel.mmu.clock = clock
        parent = kernel.spawn("bench")
        kernel.fork(parent.pid)
        return clock.now_ns

    def exec_cost_ns(self) -> float:
        kernel = self.make_kernel()
        clock = SimClock()
        kernel.clock = clock
        kernel.mmu.clock = clock
        proc = kernel.spawn("bench")
        kernel.execve(proc.pid, "child")
        return clock.now_ns

    @abc.abstractmethod
    def make_kernel(self, clock: SimClock | None = None) -> GuestKernel:
        """A kernel instance configured the way this runtime configures it."""

    def spawn_ms(self) -> float:
        """Container instantiation time."""
        return self.costs.docker_spawn_ms

    # ------------------------------------------------------------------
    # Emulated execution (Fig 4 and Table 1 run real machine code)
    # ------------------------------------------------------------------
    def run_binary(
        self, binary: Binary, clock: SimClock | None = None
    ) -> EmulatedRun:
        """Execute ``binary`` with this platform's syscall path."""
        clock = clock if clock is not None else SimClock()
        kernel = self.make_kernel(clock)
        memory = PagedMemory()
        binary.load(memory)
        memory.map_region(
            0x7FF000, 0x10000, PageFlags.USER | PageFlags.WRITABLE
        )
        cpu = CPU(memory, clock, self.costs.instruction_ns)
        cpu.regs.rip = binary.entry
        cpu.regs.rsp = 0x7FF000 + 0x10000 - 256
        syscalls = 0
        per_syscall = self.syscall_cost_ns()

        def handler(cpu: CPU, trap: Trap) -> None:
            nonlocal syscalls
            if trap.kind is not TrapKind.SYSCALL:
                raise trap
            syscalls += 1
            clock.advance(per_syscall)
            result = kernel.invoke(cpu.regs.rax & 0xFFFFFFFF, cpu)
            cpu.regs.rax = result
            cpu.regs.rip = trap.rip + 2

        cpu.trap_handler = handler
        start = clock.now_ns
        retired = cpu.run()
        return EmulatedRun(retired, clock.now_ns - start, syscalls)
