"""Unikernel (Rumprun) — the single-process LibOS baseline (§5.5).

    "For Unikernel, we used Rumprun because it can run the benchmarks with
     minor patches."

Syscalls are direct function calls into the rump kernel — as cheap as
X-Containers' converted calls — but only ONE process exists per instance
(§6.2), so NGINX with multiple workers and the Dedicated&Merged PHP+MySQL
configuration are simply unsupported, and the NetBSD-derived kernel loses
to Linux on database-style work (§5.5).
"""

from __future__ import annotations

from repro.guest.config import KernelConfig
from repro.guest.kernel import GuestKernel, NativeMmu
from repro.guest.netstack import NetDevice
from repro.perf.clock import SimClock
from repro.platforms.base import Platform


class UnsupportedWorkload(RuntimeError):
    """Raised when a workload needs more than the platform offers."""


class UnikernelPlatform(Platform):
    name = "Unikernel"
    multicore_processing = False
    max_processes = 1
    supports_kernel_modules = False

    def syscall_cost_ns(self) -> float:
        # A direct call into the rump kernel; no Meltdown surface at all.
        return self.costs.unikernel_syscall_ns

    def kernel_work_factor(self) -> float:
        return self.costs.rumprun_efficiency

    def net_device(self) -> NetDevice:
        return NetDevice.DIRECT

    def net_request_extra_ns(self) -> float:
        return 0.0  # local-cluster setup (§5.5)

    def make_kernel(self, clock: SimClock | None = None) -> GuestKernel:
        config = KernelConfig(
            name="rumprun",
            smp=False,
            nr_cpus=1,
            kpti=False,
            modules_allowed=False,
            single_concern_tuned=False,
        )
        return GuestKernel(
            config, self.costs, clock,
            mmu=NativeMmu(self.costs, clock),
            net_device=NetDevice.DIRECT,
        )

    def require_processes(self, count: int) -> None:
        if count > 1:
            raise UnsupportedWorkload(
                f"Unikernel supports a single process, not {count} "
                "(§6.2: 'only support single-process applications')"
            )

    def fork_cost_ns(self) -> float:
        raise UnsupportedWorkload("Unikernel cannot fork")

    def spawn_ms(self) -> float:
        return 350.0  # tiny image, but still a VM create
