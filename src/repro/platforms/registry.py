"""Platform registry: the ten §5.1 configurations by name.

    "We therefore used ten configurations: Docker, Xen-Container,
     X-Container, gVisor, and Clear-Container, each with an -unpatched
     version."
"""

from __future__ import annotations

from typing import Callable

from repro.perf.costs import CostModel
from repro.platforms.base import Platform
from repro.platforms.clear import ClearContainerPlatform
from repro.platforms.docker import DockerPlatform
from repro.platforms.graphene import GraphenePlatform
from repro.platforms.gvisor import GVisorPlatform
from repro.platforms.unikernel import UnikernelPlatform
from repro.platforms.x_container import XContainerPlatform
from repro.platforms.xen_container import XenContainerPlatform

_FACTORIES: dict[str, Callable[..., Platform]] = {
    "docker": DockerPlatform,
    "gvisor": GVisorPlatform,
    "clear-container": ClearContainerPlatform,
    "xen-container": XenContainerPlatform,
    "x-container": XContainerPlatform,
    "graphene": GraphenePlatform,
    "unikernel": UnikernelPlatform,
}

#: The ten cloud configurations of §5.1 (Graphene/Unikernel are the §5.5
#: bare-metal comparisons and are not part of this list).
CLOUD_CONFIGURATIONS = [
    "docker",
    "xen-container",
    "x-container",
    "gvisor",
    "clear-container",
]


def platform_names() -> list[str]:
    return sorted(_FACTORIES)


def get_platform(
    name: str,
    costs: CostModel | None = None,
    patched: bool = True,
    **kwargs,
) -> Platform:
    """Instantiate a platform by registry name."""
    factory = _FACTORIES.get(name.lower())
    if factory is None:
        raise KeyError(
            f"unknown platform {name!r}; known: {', '.join(platform_names())}"
        )
    return factory(costs=costs, patched=patched, **kwargs)


def cloud_configurations(
    costs: CostModel | None = None,
) -> dict[str, Platform]:
    """All ten §5.1 configurations, keyed 'name' / 'name-unpatched'."""
    configs: dict[str, Platform] = {}
    for name in CLOUD_CONFIGURATIONS:
        configs[name] = get_platform(name, costs, patched=True)
        configs[f"{name}-unpatched"] = get_platform(name, costs, patched=False)
    return configs
