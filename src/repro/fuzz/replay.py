"""Deterministic replay of serialized step sequences.

The other half of the shrink contract: a failing sequence the machine
found is only a *repro* if a fresh world re-executes it byte-identically
— same trace, same invariant, same failure step.  :func:`replay_steps`
is that fresh-world execution; :func:`run_steps_in_context` is the same
thing wired into a chaos :class:`~repro.faults.chaos.ScenarioContext`,
which is how :meth:`Scenario.from_steps` promotions run under
``repro chaos`` and the sanitize harness.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.faults.chaos import InvariantViolation
from repro.fuzz.steps import Step
from repro.fuzz.world import INVARIANTS, FuzzWorld


def replay_steps(
    steps: Iterable[Step],
    world_seed: int | str = 0,
    defect: str | None = None,
) -> str:
    """Replay on a fresh world; returns the full deterministic trace.

    Invariant violations do NOT raise — the violation is part of the
    trace (that is the point of replaying a failure), so byte-comparing
    two replays covers the failing case too.
    """
    world = FuzzWorld(seed=world_seed, defect=defect)
    outcome = "clean"
    try:
        for one in steps:
            world.apply(one)
        world.finalize()
    except InvariantViolation as violation:
        outcome = f"invariant-violated: {violation}"
    return world.render_trace(outcome)


def run_steps_in_context(
    ctx: Any, steps: Iterable[Step], world_seed: int | str = 0
) -> dict[str, int]:
    """Execute steps inside a chaos scenario context.

    The world borrows the context's clock, fault engine, and sanitizer
    suite, so armed faults and injections show up in the scenario's
    report exactly like a hand-written body's.  Invariant violations
    propagate (they are :class:`InvariantViolation`, which the harness
    maps to the ``invariant-violated`` outcome); on success every fuzz
    invariant is recorded on the context's ledger.
    """
    world = FuzzWorld(
        seed=world_seed,
        faults=ctx.engine,
        clock=ctx.clock,
        sanitizers=ctx.sanitizers,
    )
    for one in steps:
        world.apply(one)
    summary = world.finalize()
    for invariant in INVARIANTS:
        ctx.check(True, invariant.split(":", 1)[0])
    return summary
