"""Fuzz-session report (the ``repro fuzz`` output surface).

Rendering follows the ``chaos``/``sanitize`` conventions: a fixed-width
table for humans, :meth:`FuzzReport.as_dict` for ``--format json``, and
byte-identical output for the same inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one :func:`repro.fuzz.machine.run_fuzz` session."""

    seed: int | str
    max_examples: int
    step_budget: int
    #: Defect hook that was enabled ("" = none; the honest stack).
    defect: str
    #: Rule kinds the machine covers / invariants checked per step.
    rules: int
    invariants: int
    #: First line of the failing invariant ("" = no failure found).
    failure: str = ""
    #: Length of the shrunk counterexample (0 = none).
    shrunk_steps: int = 0
    #: Canonical JSON of the shrunk steps (``repro chaos --replay``).
    steps_json: str = ""
    #: Whether two fresh replays of the shrunk steps produced
    #: byte-identical traces (must be True for a credible find).
    replay_identical: bool = False
    #: Deterministic replay trace of the shrunk sequence.
    replay_trace: str = ""

    @property
    def ok(self) -> bool:
        return self.failure == ""

    def as_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "max_examples": self.max_examples,
            "step_budget": self.step_budget,
            "defect": self.defect,
            "rules": self.rules,
            "invariants": self.invariants,
            "ok": self.ok,
            "failure": self.failure,
            "shrunk_steps": self.shrunk_steps,
            "steps_json": self.steps_json,
            "replay_identical": self.replay_identical,
        }

    def render(self) -> str:
        lines = [
            f"stateful fuzz  seed={self.seed}  "
            f"examples={self.max_examples}  steps<={self.step_budget}",
            f"  rule kinds: {self.rules}   invariants: {self.invariants}"
            + (f"   defect: {self.defect}" if self.defect else ""),
        ]
        if self.ok:
            lines.append("  result: clean (no invariant violation found)")
        else:
            lines.append(f"  result: FAILED — {self.failure}")
            lines.append(
                f"  shrunk to {self.shrunk_steps} step(s); replay "
                + (
                    "byte-identical"
                    if self.replay_identical
                    else "NOT byte-identical (unstable repro!)"
                )
            )
            lines.append("  steps (save as steps.json for --replay):")
            for row in self.steps_json.rstrip("\n").splitlines():
                lines.append("    " + row)
        return "\n".join(lines) + "\n"
