"""The Hypothesis rule machine over the whole stack.

:class:`StackMachine` mirrors the step catalog (:data:`repro.fuzz.steps.OPS`)
one rule per op: domain spawn/destroy, live migration, Remus
checkpoint/failover, ABOM online patching, batched/unbatched net and blk
bursts, fault arm/disarm through the menu, and dual-engine fleet
operations.  Every rule builds a serializable :class:`Step` and hands it
to :meth:`FuzzWorld.apply`, which checks the full invariant set — so a
Hypothesis counterexample IS a step list, and the shrunk failure
round-trips through JSON (:func:`repro.fuzz.steps.dumps`) and replays
byte-identically (:func:`repro.fuzz.replay.replay_steps`).

:func:`run_fuzz` is the CLI/CI entry point: seeded, bounded, and
self-verifying — when a failure shrinks, the sequence is replayed twice
from scratch and the two traces are compared before the report claims a
reproducible find.
"""

from __future__ import annotations

import hashlib
from typing import Any

from hypothesis import HealthCheck, Verbosity
from hypothesis import seed as hypothesis_seed
from hypothesis import settings as hypothesis_settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    precondition,
    rule,
    run_state_machine_as_test,
)

from repro.fuzz.report import FuzzReport
from repro.fuzz.steps import Step, dumps, step
from repro.fuzz.world import DEFECTS, FAULT_MENU, FuzzWorld

#: Cap on simultaneously-live fuzz guests (keeps hypervisor memory and
#: run time bounded; the hypervisor holds 96 GB, dom0 + net pair ~5 GB).
MAX_FUZZ_DOMAINS = 12

#: Cap on fleet domains per engine (each spawn boots a real container).
MAX_FLEET_DOMAINS = 10

_FAULT_NAMES = tuple(sorted(FAULT_MENU))


class StackMachine(RuleBasedStateMachine):
    """Whole-stack stateful fuzz target.  Subclass via
    :func:`build_machine` to pin the world seed (and a defect hook)."""

    world_seed: int | str = 0
    defect: str | None = None

    def __init__(self) -> None:
        super().__init__()
        self.world = FuzzWorld(seed=self.world_seed, defect=self.defect)

    # -- helpers --------------------------------------------------------
    def _do(self, one: Step) -> None:
        self.world.apply(one)

    def _has_domains(self) -> bool:
        return len(self.world.domains) > 0

    def _has_fleet(self) -> bool:
        return self.world.fleet_hybrid.n_domains > 0

    # -- domain lifecycle ----------------------------------------------
    @precondition(lambda self: len(self.world.domains) < MAX_FUZZ_DOMAINS)
    @rule(
        memory_mb=st.sampled_from((64, 128, 256)),
        lightvm=st.booleans(),
    )
    def spawn(self, memory_mb: int, lightvm: bool) -> None:
        self._do(step("spawn", memory_mb=memory_mb, lightvm=lightvm))

    @precondition(_has_domains)
    @rule(index=st.integers(0, 31))
    def destroy(self, index: int) -> None:
        self._do(step("destroy", index=index))

    @precondition(_has_domains)
    @rule(
        index=st.integers(0, 31),
        dirty_rate=st.sampled_from((0, 50_000, 400_000)),
        downtime_ms=st.sampled_from((1, 300)),
    )
    def migrate(self, index: int, dirty_rate: int, downtime_ms: int) -> None:
        self._do(
            step(
                "migrate",
                index=index,
                dirty_rate=dirty_rate,
                downtime_ms=downtime_ms,
            )
        )

    # -- Remus ----------------------------------------------------------
    @rule(
        dirty_pages=st.integers(0, 3000),
        packets=st.integers(0, 200),
    )
    def remus_epoch(self, dirty_pages: int, packets: int) -> None:
        self._do(
            step("remus_epoch", dirty_pages=dirty_pages, packets=packets)
        )

    @precondition(lambda self: self.world.remus.backup_epoch >= 0)
    @rule()
    def remus_failover(self) -> None:
        self._do(step("remus_failover"))

    # -- ABOM ------------------------------------------------------------
    @rule(rounds=st.integers(4, 6))
    def abom_patch(self, rounds: int) -> None:
        self._do(step("abom_patch", rounds=rounds))

    # -- split-driver I/O ------------------------------------------------
    @rule(
        count=st.integers(1, 8),
        size=st.integers(0, 4000),
        batched=st.booleans(),
    )
    def net_burst(self, count: int, size: int, batched: bool) -> None:
        self._do(step("net_burst", count=count, size=size, batched=batched))

    @rule(
        start=st.integers(0, 4000),
        count=st.integers(1, 8),
        batched=st.booleans(),
        pattern=st.integers(0, 255),
    )
    def blk_burst(
        self, start: int, count: int, batched: bool, pattern: int
    ) -> None:
        self._do(
            step(
                "blk_burst",
                start=start,
                count=count,
                batched=batched,
                pattern=pattern,
            )
        )

    # -- fault plan churn ------------------------------------------------
    @rule(
        name=st.sampled_from(_FAULT_NAMES),
        mode=st.sampled_from(("every", "prob")),
        n=st.integers(1, 200),
        limit=st.integers(1, 4),
    )
    def inject_fault(self, name: str, mode: str, n: int, limit: int) -> None:
        self._do(step("inject_fault", name=name, mode=mode, n=n, limit=limit))

    @rule(name=st.sampled_from(_FAULT_NAMES + ("all",)))
    def clear_faults(self, name: str) -> None:
        self._do(step("clear_faults", name=name))

    # -- fleet engines ---------------------------------------------------
    @precondition(
        lambda self: self.world.fleet_hybrid.n_domains < MAX_FLEET_DOMAINS
    )
    @rule(count=st.integers(1, 3))
    def fleet_spawn(self, count: int) -> None:
        self._do(step("fleet_spawn", count=count))

    @precondition(_has_fleet)
    @rule(index=st.integers(0, 15), units=st.integers(1, 5))
    def fleet_post(self, index: int, units: int) -> None:
        self._do(step("fleet_post", index=index, units=units))

    @precondition(_has_fleet)
    @rule(ticks=st.integers(1, 50))
    def fleet_tick(self, ticks: int) -> None:
        self._do(step("fleet_tick", ticks=ticks))

    @precondition(_has_fleet)
    @rule()
    def fleet_drain(self) -> None:
        self._do(step("fleet_drain"))

    # -- end of sequence -------------------------------------------------
    def teardown(self) -> None:
        # Final drain + sanitizer sweep; failures here shrink too.
        self.world.finalize()


def build_machine(
    world_seed: int | str = 0, defect: str | None = None
) -> type[StackMachine]:
    """A :class:`StackMachine` subclass with the world seed pinned."""
    if defect is not None and defect not in DEFECTS:
        known = ", ".join(DEFECTS)
        raise ValueError(f"unknown defect {defect!r} (known: {known})")
    return type(
        f"StackMachine_{world_seed}",
        (StackMachine,),
        {"world_seed": world_seed, "defect": defect},
    )


def _seed_to_int(seed: int | str) -> int:
    """Stable int for Hypothesis' PRNG (strings hash via sha256)."""
    if isinstance(seed, int):
        return seed
    digest = hashlib.sha256(str(seed).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _find_steps(error: BaseException) -> tuple[Step, ...] | None:
    """Walk an exception tree for the FuzzFailure step payload."""
    pending: list[BaseException] = [error]
    seen: set[int] = set()
    while pending:
        exc = pending.pop()
        if id(exc) in seen:
            continue
        seen.add(id(exc))
        steps = getattr(exc, "steps", None)
        if steps is not None:
            return tuple(steps)
        for child in getattr(exc, "exceptions", ()) or ():
            pending.append(child)
        for attr in ("__cause__", "__context__"):
            child = getattr(exc, attr, None)
            if child is not None:
                pending.append(child)
    return None


def run_fuzz(
    seed: int | str = 0,
    max_examples: int = 25,
    steps: int = 30,
    defect: str | None = None,
) -> FuzzReport:
    """One bounded stateful-fuzz session; deterministic per seed.

    Runs the machine under a fixed Hypothesis seed with the example
    database disabled (CI must not depend on local state).  On failure
    the shrunk step list is replayed twice from a fresh world and the
    report records whether both traces were byte-identical.
    """
    from repro.fuzz.replay import replay_steps

    machine = build_machine(world_seed=seed, defect=defect)
    machine = hypothesis_seed(_seed_to_int(seed))(machine)
    run_settings = hypothesis_settings(
        max_examples=max_examples,
        stateful_step_count=steps,
        database=None,
        deadline=None,
        derandomize=False,
        print_blob=False,
        verbosity=Verbosity.quiet,
        suppress_health_check=(
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
            HealthCheck.filter_too_much,
        ),
    )
    failure: tuple[Step, ...] | None = None
    failure_message = ""
    try:
        run_state_machine_as_test(machine, settings=run_settings)
    except Exception as error:  # noqa: BLE001 — every failure is a find
        failure = _find_steps(error)
        failure_message = str(error).splitlines()[0] if str(error) else (
            type(error).__name__
        )
        if failure is None:
            # Not a FuzzFailure (harness bug / flaky shrink): surface
            # the raw error rather than claiming a reproducible find.
            raise
    if failure is None:
        return FuzzReport(
            seed=seed,
            max_examples=max_examples,
            step_budget=steps,
            defect=defect or "",
            rules=_rule_count(),
            invariants=_invariant_count(),
        )
    first = replay_steps(failure, world_seed=seed, defect=defect)
    second = replay_steps(failure, world_seed=seed, defect=defect)
    return FuzzReport(
        seed=seed,
        max_examples=max_examples,
        step_budget=steps,
        defect=defect or "",
        rules=_rule_count(),
        invariants=_invariant_count(),
        failure=failure_message,
        shrunk_steps=len(failure),
        steps_json=dumps(failure, world_seed=seed),
        replay_identical=(first == second),
        replay_trace=first,
    )


def _rule_count() -> int:
    from repro.fuzz.steps import OPS

    return len(OPS)


def _invariant_count() -> int:
    from repro.fuzz.world import INVARIANTS

    return len(INVARIANTS)


def machine_rules() -> tuple[str, ...]:
    """Rule names (= step ops) the machine covers, sorted."""
    from repro.fuzz.steps import OPS

    return tuple(sorted(OPS))


__all__: tuple[str, ...] = (
    "StackMachine",
    "build_machine",
    "machine_rules",
    "run_fuzz",
)
