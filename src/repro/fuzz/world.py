"""The whole-stack world the stateful fuzzer drives.

One :class:`FuzzWorld` owns every substrate the chaos catalog exercises
— hypervisor + toolstack domain lifecycle, live migration, Remus
replication, ABOM patching of a running guest, split net/blk drivers
over real grant and event tables, and a *pair* of discrete-event fleet
engines (hybrid and stepped) driven in lockstep as their own identity
oracle.  Steps (:mod:`repro.fuzz.steps`) are applied one at a time and
the full invariant set (:data:`INVARIANTS`) is checked after every one;
a violation raises :class:`FuzzFailure` carrying the exact step prefix
that produced it.

Determinism contract: a world is a pure function of ``(seed, steps)``.
Nothing here reads wall clocks or unseeded randomness, payload bytes are
derived from step args, and fault specs armed at runtime fork their RNG
streams from the engine seed by arrival order — so a serialized step
sequence replays byte-identically (trace included), which is what makes
shrunk failures promotable to catalog scenarios.

Fault budgets: every *failing* fault kind (backend kills, lost notifies,
grant-map failures, spawn timeouts, wake drops...) has a hard budget
below the relevant retry/watchdog cap, so injected chaos is always
survivable — an invariant violation means a real bug, never an exhausted
retry loop.  Non-failing kinds (stalls, delays, dirty bursts) may use
seeded probability triggers; failing kinds are occurrence-triggered so
their injection count is exact.

``defect`` hooks deliberately break the world (``blk-lost-write`` drops
a committed sector write; ``fleet-skew`` desynchronizes the dual
engines) — the only way to demonstrate, test, and regression-pin the
shrink/replay pipeline on a stack whose correct behavior is to survive
everything the fuzzer throws at it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.faults import sites
from repro.faults.chaos import InvariantViolation
from repro.faults.plan import (
    Every,
    FaultEngine,
    FaultPlan,
    FaultSpec,
    Probability,
    Trigger,
)
from repro.faults.retry import RetryPolicy
from repro.fuzz.steps import Step
from repro.obs.registry import Registry
from repro.perf.clock import SimClock
from repro.sanitize.suite import SanitizerSuite

#: Defect hooks ``repro fuzz --defect`` can switch on.
DEFECTS = ("blk-lost-write", "fleet-skew")

#: Fleet engine tick (both engines share it; posts land on this grid).
FLEET_TICK_NS = 1e6

#: Virtual disk size backing the blk driver.
BLK_CAPACITY_SECTORS = 8192

SECTOR_SIZE = 512


class FuzzFailure(InvariantViolation):
    """An invariant broke; carries the step prefix that reproduces it."""

    def __init__(self, message: str, steps: tuple[Step, ...]) -> None:
        super().__init__(message)
        self.steps = steps


@dataclass(frozen=True)
class MenuEntry:
    """One armable fault: site + kind with its survivability bounds."""

    site: str
    kind: str
    param: float = 0.0
    #: Max injections ever armed across the run (None = unbounded; only
    #: allowed for kinds that cannot fail an operation).
    budget: int | None = None
    #: Whether a seeded probability trigger is allowed (non-failing
    #: kinds only — budgets cannot bound a probability spec).
    prob_ok: bool = False


#: The armable fault menu.  Budgets sit strictly below the retry caps:
#: the worst-case net path (3 kills + 2 grant failures + 3 lost
#: notifies = 8 failures) stays under the drivers' 16-attempt retry;
#: spawn timeouts (2) stay under the toolstack's 4 attempts; wake drops
#: (8) stay under the engine watchdog's 16 redeliveries.
FAULT_MENU: dict[str, MenuEntry] = {
    "net-kill": MenuEntry(sites.NET_BACKEND, "kill", budget=3),
    "net-stall": MenuEntry(sites.NET_RING, "stall", param=2.0, prob_ok=True),
    "blk-kill": MenuEntry(sites.BLK_BACKEND, "kill", budget=3),
    "blk-stall": MenuEntry(
        sites.BLK_BACKEND, "stall", param=2.0, prob_ok=True
    ),
    "notify-drop": MenuEntry(sites.EVENT_NOTIFY, "drop", budget=3),
    "notify-delay": MenuEntry(
        sites.EVENT_NOTIFY, "delay", param=4000.0, prob_ok=True
    ),
    "grant-map-fail": MenuEntry(sites.GRANT_MAP, "fail", budget=2),
    "spawn-timeout": MenuEntry(sites.TOOLSTACK_SPAWN, "timeout", budget=2),
    "remus-ack-fail": MenuEntry(sites.REMUS_ACK, "fail", budget=3),
    "migrate-abort": MenuEntry(sites.MIGRATION_ROUND, "abort", budget=4),
    "migrate-dirty": MenuEntry(
        sites.MIGRATION_ROUND, "dirty", param=0.0, prob_ok=True
    ),
    "abom-contend": MenuEntry(sites.ABOM_CMPXCHG, "contend", budget=2),
    "wake-drop": MenuEntry(sites.SCHED_WAKE, "drop", budget=8),
    "wake-delay": MenuEntry(
        sites.SCHED_WAKE, "delay", param=3e6, prob_ok=True
    ),
}

#: Menu entries that arm the fleet engines instead of the main engine.
_FLEET_SITES = (sites.SCHED_WAKE,)

#: The invariant catalog (checked after every step; docs/stateful_fuzzing.md).
INVARIANTS = (
    "blk-committed-bytes: every committed sector reads back byte-identical",
    "net-ring-balance: requests == responses and bytes moved match the "
    "shadow ledger",
    "migration-source-safety: every live domain stays runnable (an "
    "aborted migration never strands its source)",
    "remus-output-commit: no packet escapes before its epoch is "
    "acknowledged",
    "telemetry-conservation: obs registry values equal the substrate "
    "counters they are bound to",
    "grant-balance: hypervisor active grants == grant-sanitizer live "
    "refs, with zero sanitizer findings",
    "wake-queue-consistency: pending mailbox units always have a queued "
    "kick; park accounting stays in bounds",
    "dual-engine-identity: hybrid and stepped fleet snapshots are "
    "byte-identical",
    "abom-patch-complete: every patch run ends fully patched with no "
    "unrecognized sites",
)


class FuzzWorld:
    """The executable target: applies :class:`Step` values, checks
    invariants, and renders a deterministic trace."""

    def __init__(
        self,
        seed: int | str = 0,
        faults: FaultEngine | None = None,
        clock: SimClock | None = None,
        sanitizers: Any = None,
        defect: str | None = None,
    ) -> None:
        from repro.xen.blkdev import BlockStore, SplitBlockDriver
        from repro.xen.drivers import SplitNetDriver
        from repro.xen.events import EventChannelTable
        from repro.xen.hypervisor import DomainKind, XenHypervisor
        from repro.xen.remus import RemusReplicator
        from repro.xen.toolstack import Toolstack

        if defect is not None and defect not in DEFECTS:
            known = ", ".join(DEFECTS)
            raise ValueError(f"unknown defect {defect!r} (known: {known})")
        self.seed = seed
        self.defect = defect
        self.clock = clock if clock is not None else SimClock()
        #: Main fault engine (every site except SCHED_WAKE).  When the
        #: world runs inside a chaos scenario this is the scenario
        #: context's engine, so injections land in the chaos report.
        self.faults = (
            faults
            if faults is not None
            else FaultPlan((), f"{seed}:faults").compile(self.clock)
        )
        self.sanitizers = (
            sanitizers if sanitizers is not None else SanitizerSuite()
        )
        # -- hypervisor + lifecycle ------------------------------------
        self.xen = XenHypervisor(clock=self.clock)
        self.xen.grants.faults = self.faults
        self.xen.grants.sanitizer = self.sanitizers
        self.toolstack = Toolstack(self.xen, faults=self.faults)
        #: Fuzz-spawned guests (eligible for destroy/migrate).  The net
        #: guest/backend pair below is deliberately NOT in this list —
        #: they hold the ring grant for the whole run.
        self.domains: list[Any] = []
        # -- split drivers ---------------------------------------------
        self.events = EventChannelTable(
            self.xen.costs, self.clock,
            faults=self.faults, sanitizer=self.sanitizers,
        )
        self._net_guest = self.xen.create_domain("fuzz-net-guest")
        self._net_backend = self.xen.create_domain(
            "fuzz-netback", DomainKind.DRIVER
        )
        io_retry = RetryPolicy(max_attempts=16)
        self.net = SplitNetDriver(
            self._net_guest, self._net_backend, self.xen.grants,
            self.events, self.xen.costs, self.clock,
            faults=self.faults, retry=io_retry, sanitizer=self.sanitizers,
        )
        self.store = BlockStore(BLK_CAPACITY_SECTORS)
        self.blk = SplitBlockDriver(
            self.store, self.xen.costs, self.clock,
            faults=self.faults, retry=io_retry, sanitizer=self.sanitizers,
        )
        # -- Remus ------------------------------------------------------
        self.remus = RemusReplicator(epoch_ms=25.0, faults=self.faults)
        self._epoch_i = 0
        # -- dual fleet engines ----------------------------------------
        # Identically-seeded fault engines: SCHED_WAKE specs are armed
        # on both in the same order, so their per-spec RNG streams (and
        # therefore every drop/delay decision) are identical — the
        # precondition for the hybrid/stepped identity oracle.
        self.fleet_faults = tuple(
            FaultPlan((), f"{seed}:fleet").compile(SimClock())
            for _ in range(2)
        )
        self.fleets = self._build_fleets()
        self.fleet_hybrid, self.fleet_stepped = self.fleets
        # -- telemetry --------------------------------------------------
        from repro.obs import wire

        self.registry = Registry()
        self.net.bind_telemetry(self.registry, "net")
        self.blk.bind_telemetry(self.registry, "blk")
        wire.wire_faults(self.registry, self.faults)
        # Only the hybrid fleet is bound (the metrics carry no engine
        # label; binding both would double-register the sched_* names).
        self.fleet_hybrid.bind_telemetry(self.registry)
        # -- bookkeeping ------------------------------------------------
        self._blk_shadow: dict[int, bytes] = {}
        self._net_requests = 0
        self._net_bytes = 0
        self._budget = {
            name: entry.budget
            for name, entry in FAULT_MENU.items()
            if entry.budget is not None
        }
        self.counts = {
            "spawns": 0, "destroys": 0, "migrations_converged": 0,
            "migrations_aborted": 0, "remus_epochs": 0,
            "remus_failovers": 0, "abom_patches": 0,
        }
        self.steps: list[Step] = []
        self.trace: list[str] = []
        self.failed = False
        self.finalized = False

    def _build_fleets(self) -> tuple[Any, ...]:
        from repro.core.engine import ExecutionEngine

        return tuple(
            ExecutionEngine(
                hybrid=hybrid,
                tick_ns=FLEET_TICK_NS,
                clock=engine_faults.clock,
                faults=engine_faults,
                sanitizer=self.sanitizers,
            )
            for hybrid, engine_faults in zip(
                (True, False), self.fleet_faults
            )
        )

    # ------------------------------------------------------------------
    # Step execution
    # ------------------------------------------------------------------
    def apply(self, one: Step) -> str:
        """Execute one step, append it to the trace, check invariants.

        Returns the deterministic trace note.  Raises
        :class:`FuzzFailure` (with the full step prefix) on any
        invariant violation.
        """
        if self.failed:
            raise RuntimeError("world already failed; build a fresh one")
        handler = getattr(self, f"_op_{one.op}")
        note: str = handler(dict(one.args))
        self.steps.append(one)
        self.trace.append(
            f"{len(self.steps):03d} {one.describe()} -> {note}"
        )
        self.check_invariants()
        return note

    def _fail(self, message: str) -> None:
        self.failed = True
        self.trace.append(f"*** INVARIANT VIOLATED: {message}")
        raise FuzzFailure(message, tuple(self.steps))

    # -- domain lifecycle ----------------------------------------------
    def _op_spawn(self, args: dict[str, Any]) -> str:
        name = f"fuzz-{self.counts['spawns']}"
        creation = self.toolstack.create(
            name,
            memory_mb=int(args["memory_mb"]),
            full_vm_boot=not bool(args["lightvm"]),
        )
        self.domains.append(creation.domain)
        self.counts["spawns"] += 1
        return f"domid={creation.domain.domid} live={len(self.domains)}"

    def _op_destroy(self, args: dict[str, Any]) -> str:
        if not self.domains:
            return "no-op (no fuzz domains)"
        dom = self.domains.pop(int(args["index"]) % len(self.domains))
        self.toolstack.destroy(dom.domid)
        self.counts["destroys"] += 1
        return f"domid={dom.domid} live={len(self.domains)}"

    def _op_migrate(self, args: dict[str, Any]) -> str:
        from repro.xen.migration import LiveMigration, MigrationSession

        if not self.domains:
            return "no-op (no fuzz domains)"
        dom = self.domains[int(args["index"]) % len(self.domains)]
        migration = LiveMigration(
            memory_mb=dom.memory_mb,
            dirty_rate_pages_s=float(int(args["dirty_rate"])),
            downtime_budget_ms=float(int(args["downtime_ms"])),
            faults=self.faults,
            abort_on_non_convergence=True,
        )
        report = MigrationSession(dom, migration).run()
        if report.aborted:
            self.counts["migrations_aborted"] += 1
            return f"domid={dom.domid} aborted rounds={report.rounds}"
        # Converged: the destination owns the domain now; reclaim the
        # quiesced source copy.
        self.domains.remove(dom)
        self.xen.destroy_domain(dom.domid)
        self.counts["migrations_converged"] += 1
        return f"domid={dom.domid} converged rounds={report.rounds}"

    # -- Remus ----------------------------------------------------------
    def _op_remus_epoch(self, args: dict[str, Any]) -> str:
        from repro.xen.remus import Epoch

        self.remus.run_epoch(
            Epoch(
                self._epoch_i,
                int(args["dirty_pages"]),
                int(args["packets"]),
            )
        )
        self._epoch_i += 1
        self.counts["remus_epochs"] += 1
        return (
            f"epoch={self._epoch_i - 1} "
            f"buffered={self.remus.buffered_packets} "
            f"backup={self.remus.backup_epoch}"
        )

    def _op_remus_failover(self, args: dict[str, Any]) -> str:
        from repro.xen.remus import RemusReplicator

        if self.remus.backup_epoch < 0:
            return "no-op (backup has no checkpoint)"
        discarded = self.remus.buffered_packets
        resume = self.remus.fail_primary()
        if not self.remus.output_commit_invariant():
            self._fail(
                "remus-output-commit: failover accounting does not balance"
            )
        # The backup is the new primary: epoch indices stay monotonic.
        self.remus = RemusReplicator(epoch_ms=25.0, faults=self.faults)
        self.counts["remus_failovers"] += 1
        return f"resumed-from={resume} discarded={discarded}"

    # -- ABOM ------------------------------------------------------------
    def _op_abom_patch(self, args: dict[str, Any]) -> str:
        from repro.arch import Assembler, Reg
        from repro.core import CountingServices, XContainer

        xc = XContainer(
            CountingServices(results={}), clock=self.clock,
            faults=self.faults, sanitizers=self.sanitizers,
        )
        # One 7-byte site and one 9-byte site, executed ``rounds`` times
        # each; with the abom-contend budget (2) below ``rounds`` (>= 4
        # from the rule strategy), both sites must end up patched.
        asm = Assembler()
        asm.mov_imm32(Reg.RBX, max(4, int(args["rounds"])))
        asm.label("loop")
        asm.syscall_site(39, style="mov_eax")
        asm.syscall_site(15, style="mov_rax")
        asm.dec(Reg.RBX)
        asm.jne("loop")
        asm.hlt()
        xc.run(asm.build())
        stats = xc.abom_stats
        if stats.total_patches != 2 or stats.unrecognized_sites != 0:
            self._fail(
                "abom-patch-complete: "
                f"{stats.total_patches}/2 sites patched, "
                f"{stats.unrecognized_sites} unrecognized"
            )
        self.counts["abom_patches"] += 1
        return (
            f"patches={stats.total_patches} "
            f"contentions={stats.cmpxchg_contentions}"
        )

    # -- split-driver I/O ------------------------------------------------
    def _op_net_burst(self, args: dict[str, Any]) -> str:
        count = max(1, int(args["count"]))
        size = int(args["size"])
        sizes = tuple(size + i for i in range(count))
        if bool(args["batched"]):
            self.net.transmit_batch(sizes)
        else:
            for nbytes in sizes:
                self.net.transmit(nbytes)
        self._net_requests += count
        self._net_bytes += sum(sizes)
        return f"requests={self._net_requests} bytes={self._net_bytes}"

    def _op_blk_burst(self, args: dict[str, Any]) -> str:
        count = max(1, int(args["count"]))
        start = int(args["start"]) % BLK_CAPACITY_SECTORS
        pattern = int(args["pattern"]) % 256
        writes: list[tuple[int, bytes]] = []
        for i in range(count):
            sector = (start + i) % BLK_CAPACITY_SECTORS
            data = bytes([(pattern + sector) % 256]) * SECTOR_SIZE
            writes.append((sector, data))
        skip_from = len(writes)
        if self.defect == "blk-lost-write":
            # The seeded bug: the last committed write never reaches the
            # store, but the shadow ledger (below) still records it.
            skip_from = len(writes) - 1
        if bool(args["batched"]):
            if skip_from:
                self.blk.write_many(writes[:skip_from])
        else:
            for sector, data in writes[:skip_from]:
                self.blk.write(sector, data)
        for sector, data in writes:
            self._blk_shadow[sector] = data
        # Read the range back through the driver (exercises the read
        # path under the same faults; correctness is the invariant's
        # direct store read, not this).
        ops = [(sector, 1) for sector, _ in writes]
        if bool(args["batched"]):
            self.blk.read_many(ops)
        else:
            for sector, _ in ops:
                self.blk.read(sector)
        return (
            f"sectors={count}@{start} "
            f"committed={len(self._blk_shadow)}"
        )

    # -- fault plan churn ------------------------------------------------
    def _fleet_engines_for(self, site: str) -> tuple[FaultEngine, ...]:
        return self.fleet_faults if site in _FLEET_SITES else (self.faults,)

    def _op_inject_fault(self, args: dict[str, Any]) -> str:
        name = str(args["name"])
        entry = FAULT_MENU.get(name)
        if entry is None:
            known = ", ".join(sorted(FAULT_MENU))
            raise ValueError(f"unknown fault {name!r} (known: {known})")
        n = max(1, int(args["n"]))
        limit = max(1, int(args["limit"]))
        mode = str(args["mode"])
        trigger: Trigger
        if mode == "prob" and entry.prob_ok and entry.budget is None:
            trigger = Probability(min(n, 500) / 1000.0)
            note = f"p={min(n, 500)}/1000"
        else:
            # Failing kinds are always occurrence-triggered: their
            # injection count must be exactly bounded by the budget.
            trigger = Every(n)
            note = f"every={n}"
        if entry.budget is not None:
            left = self._budget[name]
            limit = min(limit, left)
            if limit == 0:
                return f"no-op ({name} budget exhausted)"
            self._budget[name] = left - limit
        spec = FaultSpec(
            entry.site, entry.kind, trigger, param=entry.param, limit=limit
        )
        for engine in self._fleet_engines_for(entry.site):
            engine.arm(spec)
        return f"{entry.site} {entry.kind} {note} limit={limit}"

    def _op_clear_faults(self, args: dict[str, Any]) -> str:
        name = str(args["name"])
        if name == "all":
            removed = self.faults.disarm()
            for engine in self.fleet_faults:
                removed += engine.disarm()
            return f"disarmed={removed}"
        entry = FAULT_MENU.get(name)
        if entry is None:
            known = ", ".join(sorted(FAULT_MENU))
            raise ValueError(f"unknown fault {name!r} (known: {known})")
        # Disarm is per-site (menu entries sharing a site go together).
        removed = 0
        for engine in self._fleet_engines_for(entry.site):
            removed += engine.disarm(entry.site)
        return f"{entry.site} disarmed={removed}"

    # -- fleet engines ---------------------------------------------------
    def _op_fleet_spawn(self, args: dict[str, Any]) -> str:
        count = max(1, int(args["count"]))
        for _ in range(count):
            for fleet in self.fleets:
                fleet.spawn()
        return f"domains={self.fleet_hybrid.n_domains}"

    def _op_fleet_post(self, args: dict[str, Any]) -> str:
        n_domains = self.fleet_hybrid.n_domains
        if n_domains == 0:
            return "no-op (no fleet domains)"
        domid = int(args["index"]) % n_domains
        units = max(1, int(args["units"]))
        targets = self.fleets
        if self.defect == "fleet-skew":
            # The seeded bug: the stepped oracle never sees this post.
            targets = (self.fleet_hybrid,)
        for fleet in targets:
            fleet.post_work(domid, units, at_ns=fleet.now_ns)
        return f"domid={domid} units={units}"

    def _op_fleet_tick(self, args: dict[str, Any]) -> str:
        ticks = max(1, int(args["ticks"]))
        for fleet in self.fleets:
            fleet.run_until(fleet.now_ns + ticks * FLEET_TICK_NS)
        return (
            f"now_ticks={int(self.fleet_hybrid.now_ns / FLEET_TICK_NS)} "
            f"completed={self.fleet_hybrid.total_completed()}"
        )

    def _op_fleet_drain(self, args: dict[str, Any]) -> str:
        for fleet in self.fleets:
            fleet.run_to_quiescence()
        return (
            f"completed={self.fleet_hybrid.total_completed()} "
            f"pending={self.fleet_hybrid.pending_total()}"
        )

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """The full invariant sweep (:data:`INVARIANTS`); called after
        every step and once more at :meth:`finalize`."""
        self._check_blk_committed()
        self._check_net_balance()
        self._check_migration_safety()
        if not self.remus.output_commit_invariant():
            self._fail("remus-output-commit: accounting does not balance")
        self._check_telemetry()
        self._check_grants()
        self._check_wake_queues()
        self._check_engine_identity()

    def _check_blk_committed(self) -> None:
        for sector in sorted(self._blk_shadow):
            expected = self._blk_shadow[sector]
            actual = self.store.read_sector(sector)
            if actual != expected:
                self._fail(
                    f"blk-committed-bytes: sector {sector} reads "
                    f"{actual[:4].hex()}... expected {expected[:4].hex()}..."
                )

    def _check_net_balance(self) -> None:
        stats = self.net.stats
        if stats.requests != stats.responses:
            self._fail(
                "net-ring-balance: "
                f"{stats.requests} requests vs {stats.responses} responses"
            )
        if stats.requests != self._net_requests:
            self._fail(
                "net-ring-balance: driver saw "
                f"{stats.requests} requests, shadow ledger {self._net_requests}"
            )
        if stats.bytes_moved != self._net_bytes:
            self._fail(
                "net-ring-balance: driver moved "
                f"{stats.bytes_moved} B, shadow ledger {self._net_bytes} B"
            )

    def _check_migration_safety(self) -> None:
        for dom in self.domains:
            if not dom.running:
                self._fail(
                    f"migration-source-safety: domain {dom.domid} "
                    f"({dom.name}) is not runnable"
                )

    def _check_telemetry(self) -> None:
        pairs = (
            ("xen_ring_requests_total", {"driver": "net"},
             self.net.stats.requests),
            ("xen_ring_bytes_moved_total", {"driver": "net"},
             self.net.stats.bytes_moved),
            ("xen_ring_writes_total", {"driver": "blk"},
             self.blk.stats.writes),
            ("faults_injected_total", {}, self.faults.totals().injected),
            ("sched_wake_posts_total", {}, self.fleet_hybrid.stats.posts),
        )
        for metric, labels, expected in pairs:
            got = self.registry.value(metric, **labels)
            if got != expected:
                self._fail(
                    f"telemetry-conservation: {metric}{labels or ''} "
                    f"reads {got}, substrate counter is {expected}"
                )

    def _check_grants(self) -> None:
        shadow = getattr(self.sanitizers, "grants", None)
        if shadow is None:
            return
        live = len(shadow.live_refs())
        active = self.xen.grants.active_grants
        if live != active:
            self._fail(
                f"grant-balance: hypervisor holds {active} active "
                f"grants, sanitizer mirrors {live}"
            )
        findings = [
            str(f) for f in self.sanitizers.findings
        ]
        if findings:
            self._fail(
                f"grant-balance: sanitizer findings mid-run: {findings[0]}"
            )

    def _check_wake_queues(self) -> None:
        for label, fleet in (("hybrid", self.fleet_hybrid),
                             ("stepped", self.fleet_stepped)):
            if fleet.n_parked > fleet.n_domains:
                self._fail(
                    f"wake-queue-consistency: {label} parks "
                    f"{fleet.n_parked} of {fleet.n_domains} domains"
                )
            for domid in range(fleet.n_domains):
                dom = fleet.domain(domid)
                if dom.dead or dom.pending_units == 0:
                    continue
                if fleet.queued_wakes(domid) == 0:
                    self._fail(
                        "wake-queue-consistency: "
                        f"{label} dom{domid} has {dom.pending_units} "
                        "pending units and no queued kick (stranded work)"
                    )

    def _check_engine_identity(self) -> None:
        if self.fleet_hybrid.snapshot() != self.fleet_stepped.snapshot():
            self._fail(
                "dual-engine-identity: hybrid and stepped snapshots "
                "diverged"
            )

    # ------------------------------------------------------------------
    # Finalize + rendering
    # ------------------------------------------------------------------
    def finalize(self) -> dict[str, int]:
        """Drain the fleets, run the sanitizers' end-of-run sweep, check
        everything once more.  Returns the int-counter summary."""
        if self.failed:
            return self.summary()
        if self.finalized:
            return self.summary()
        self.finalized = True
        for fleet in self.fleets:
            fleet.run_to_quiescence()
        self.check_invariants()
        self.sanitizers.finish()
        findings = [str(f) for f in self.sanitizers.findings]
        if findings:
            self._fail(f"sanitizers dirty at finalize: {findings[0]}")
        total = self.fleet_hybrid.stats
        if total.units_posted != self.fleet_hybrid.total_completed():
            self._fail(
                "wake-queue-consistency: fleet drained with "
                f"{total.units_posted} units posted but "
                f"{self.fleet_hybrid.total_completed()} completed"
            )
        return self.summary()

    def summary(self) -> dict[str, int]:
        totals = self.faults.totals()
        fleet_injected = self.fleet_faults[0].totals().injected
        return dict(
            sorted(
                {
                    **self.counts,
                    "steps": len(self.steps),
                    "live_domains": len(self.domains),
                    "net_requests": self.net.stats.requests,
                    "net_bytes": self.net.stats.bytes_moved,
                    "blk_writes": self.blk.stats.writes,
                    "blk_reads": self.blk.stats.reads,
                    "committed_sectors": len(self._blk_shadow),
                    "fleet_domains": self.fleet_hybrid.n_domains,
                    "fleet_units_completed":
                        self.fleet_hybrid.total_completed(),
                    "fleet_injected": fleet_injected,
                    "faults_injected": totals.injected,
                    "faults_recovered": totals.recovered,
                    "faults_fatal": totals.fatal,
                }.items()
            )
        )

    def render_trace(self, outcome: str = "clean") -> str:
        """Deterministic full-run rendering (the byte-identity artifact)."""
        lines = [
            f"fuzz world seed={self.seed} steps={len(self.steps)}",
        ]
        lines += self.trace
        lines.append(f"outcome: {outcome}")
        for key, value in self.summary().items():
            lines.append(f"  {key} = {value}")
        return "\n".join(lines) + "\n"
