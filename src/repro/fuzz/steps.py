"""Serializable fuzzer steps.

Every rule the stateful fuzzer (:mod:`repro.fuzz.machine`) executes
records itself as a :class:`Step` — a pure-data value (op name plus a
sorted tuple of JSON-scalar arguments) that round-trips through JSON and
re-executes byte-identically on a :class:`~repro.fuzz.world.FuzzWorld`
with the same world seed.  A shrunk failing sequence is therefore a
minimal, seed-stable repro: ``repro chaos --replay steps.json`` re-runs
it, and :meth:`repro.faults.chaos.Scenario.from_steps` promotes it into
the scenario catalog.

The op catalog (:data:`OPS`) is the contract between the machine (which
generates steps), the world (which executes them), and the on-disk
regression catalog (``tests/faults/regressions/``).  Args are restricted
to ``int``/``str``/``bool`` so serialization is exact — no floats, no
containers — and :func:`dumps` is canonical (sorted keys, fixed indent)
so byte-identity is well-defined.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

#: On-disk format version of :func:`dumps`.
FORMAT_VERSION = 1

ArgValue = int | str | bool

#: Op name -> exact set of required argument names.  Every op takes all
#: of its args (no optionals): keeps serialized steps shape-stable.
OPS: dict[str, tuple[str, ...]] = {
    # Domain lifecycle (xen.toolstack / xen.hypervisor)
    "spawn": ("memory_mb", "lightvm"),
    "destroy": ("index",),
    # Live migration (xen.migration)
    "migrate": ("index", "dirty_rate", "downtime_ms"),
    # Remus replication (xen.remus)
    "remus_epoch": ("dirty_pages", "packets"),
    "remus_failover": (),
    # ABOM online patch of a running guest (core.abom)
    "abom_patch": ("rounds",),
    # Split-driver I/O (xen.drivers / xen.blkdev / xen.events)
    "net_burst": ("count", "size", "batched"),
    "blk_burst": ("start", "count", "batched", "pattern"),
    # Fault plan churn (repro.faults)
    "inject_fault": ("name", "mode", "n", "limit"),
    "clear_faults": ("name",),
    # Discrete-event fleet (core.engine; dual hybrid/stepped engines)
    "fleet_spawn": ("count",),
    "fleet_post": ("index", "units"),
    "fleet_tick": ("ticks",),
    "fleet_drain": (),
}


@dataclass(frozen=True)
class Step:
    """One serializable fuzzer action: op name + sorted scalar args."""

    op: str
    args: tuple[tuple[str, ArgValue], ...] = ()

    def __post_init__(self) -> None:
        if self.op not in OPS:
            known = ", ".join(sorted(OPS))
            raise ValueError(f"unknown step op {self.op!r} (known: {known})")
        object.__setattr__(self, "args", tuple(sorted(self.args)))
        names = tuple(name for name, _ in self.args)
        expected = tuple(sorted(OPS[self.op]))
        if names != expected:
            raise ValueError(
                f"step {self.op!r} needs args {expected}, got {names}"
            )
        for name, value in self.args:
            # bool is an int subclass; accept it explicitly first.
            if not isinstance(value, (bool, int, str)):
                raise ValueError(
                    f"step arg {name}={value!r} is not a JSON scalar "
                    "(int/str/bool)"
                )

    def __getitem__(self, name: str) -> ArgValue:
        for key, value in self.args:
            if key == name:
                return value
        raise KeyError(name)

    def describe(self) -> str:
        """Single-line rendering used in world traces."""
        inner = " ".join(f"{k}={v}" for k, v in self.args)
        return f"{self.op}({inner})" if inner else f"{self.op}()"


def step(op: str, **args: ArgValue) -> Step:
    """Build a validated :class:`Step` from keyword args."""
    return Step(op, tuple(args.items()))


# ---------------------------------------------------------------------------
# JSON round-trip
# ---------------------------------------------------------------------------


def to_jsonable(
    steps: Iterable[Step], world_seed: int | str = 0
) -> dict[str, Any]:
    """The serialized form: a versioned envelope around the step list."""
    return {
        "version": FORMAT_VERSION,
        "world_seed": world_seed,
        "steps": [
            {"op": one.op, "args": dict(one.args)} for one in steps
        ],
    }


def from_jsonable(
    payload: Mapping[str, Any]
) -> tuple[int | str, tuple[Step, ...]]:
    """Inverse of :func:`to_jsonable`; validates every step."""
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported steps format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    world_seed = payload.get("world_seed", 0)
    if not isinstance(world_seed, (int, str)) or isinstance(world_seed, bool):
        raise ValueError(f"world_seed must be int or str: {world_seed!r}")
    raw = payload.get("steps")
    if not isinstance(raw, list):
        raise ValueError("steps must be a list")
    steps: list[Step] = []
    for entry in raw:
        if not isinstance(entry, Mapping):
            raise ValueError(f"step entry must be an object: {entry!r}")
        args = entry.get("args", {})
        if not isinstance(args, Mapping):
            raise ValueError(f"step args must be an object: {args!r}")
        steps.append(Step(entry["op"], tuple(args.items())))
    return world_seed, tuple(steps)


def dumps(steps: Iterable[Step], world_seed: int | str = 0) -> str:
    """Canonical JSON: sorted keys, 2-space indent, trailing newline.

    Canonical means byte-identity of two serializations is equivalent to
    equality of the (world_seed, steps) pair — what the regression
    catalog's replay gate asserts.
    """
    return json.dumps(
        to_jsonable(steps, world_seed), indent=2, sort_keys=True
    ) + "\n"


def loads(text: str) -> tuple[int | str, tuple[Step, ...]]:
    """Parse :func:`dumps` output back into (world_seed, steps)."""
    return from_jsonable(json.loads(text))
