"""Stateful whole-stack scenario fuzzing (ROADMAP item 5).

A Hypothesis rule machine (:mod:`repro.fuzz.machine`) drives every
substrate at once — domain lifecycle, live migration, Remus, ABOM,
split-driver I/O, runtime fault arm/disarm, and the dual hybrid/stepped
fleet engines — checking the invariant catalog
(:data:`repro.fuzz.world.INVARIANTS`) after every rule.  Rules record
themselves as serializable :class:`~repro.fuzz.steps.Step` values, so a
shrunk counterexample round-trips through JSON, replays byte-identically
(``repro chaos --replay``), and can be promoted into the scenario
catalog via :meth:`repro.faults.chaos.Scenario.from_steps`.

Heavy submodules (``machine`` pulls in Hypothesis) import lazily; the
step schema and world are always available.
"""

from __future__ import annotations

from typing import Any

from repro.fuzz.report import FuzzReport
from repro.fuzz.steps import OPS, Step, dumps, from_jsonable, loads, step
from repro.fuzz.world import DEFECTS, FAULT_MENU, INVARIANTS, FuzzFailure, FuzzWorld

__all__ = (
    "DEFECTS",
    "FAULT_MENU",
    "FuzzFailure",
    "FuzzReport",
    "FuzzWorld",
    "INVARIANTS",
    "OPS",
    "Step",
    "dumps",
    "from_jsonable",
    "loads",
    "run_fuzz",
    "step",
)


def run_fuzz(*args: Any, **kwargs: Any) -> FuzzReport:
    """Lazy forward to :func:`repro.fuzz.machine.run_fuzz`."""
    from repro.fuzz.machine import run_fuzz as _run_fuzz

    return _run_fuzz(*args, **kwargs)
