"""Differential checking: static predictions vs. online ABOM.

The static analyzer *predicts* what ABOM will do to each site; ABOM
*does* it, one trap at a time, inside the interpreter.  This module runs
the same binary both ways and diffs the outcomes:

* **decision diff** — for every site that actually trapped, the static
  prediction (patchable / not, and the pattern) must match ABOM's
  recorded decision: *static says patchable ⟺ ABOM patched it*;
* **byte diff** — pre-patching the binary offline (splicing the
  predicted replacement bytes into a copy of the text at rest) must
  converge to exactly the bytes ABOM left behind online.

Any mismatch is a bug in one of the two implementations — or a genuine
discrepancy of the AnICA kind, where the abstract (static) model and the
concrete (executed) behaviour of the same bytes disagree.  CI treats
mismatches as failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sites import DiscoveredSite, discover_binary_sites
from repro.arch.binary import Binary
from repro.core.xcontainer import XContainer
from repro.core.xlibos import CountingServices
from repro.perf.trace import Tracer


@dataclass(frozen=True)
class SiteOutcome:
    """Static prediction vs. ABOM decision for one syscall site."""

    addr: int
    pattern: str
    executed: bool
    predicted_patch: bool
    abom_patched: bool

    @property
    def match(self) -> bool:
        """Decisions agree (sites that never trapped are vacuously ok)."""
        return (not self.executed) or (
            self.predicted_patch == self.abom_patched
        )


@dataclass(frozen=True)
class ByteMismatch:
    addr: int
    expected: bytes
    actual: bytes


@dataclass
class DifferentialResult:
    """Outcome of one static-vs-ABOM differential run."""

    outcomes: list[SiteOutcome] = field(default_factory=list)
    byte_mismatches: list[ByteMismatch] = field(default_factory=list)
    #: Syscall addresses ABOM patched that static discovery never found.
    unpredicted_patches: list[int] = field(default_factory=list)
    traps: int = 0
    #: Trap addresses seen by exactly one of the tracecache=True /
    #: tracecache=False runs (the superblock compiler must not change
    #: which sites trap).
    tracecache_trap_mismatches: list[int] = field(default_factory=list)
    #: Final-text divergence between the two runs (ABOM must converge to
    #: the same patched bytes whether or not traces were compiled).
    tracecache_byte_mismatches: list[ByteMismatch] = field(
        default_factory=list
    )

    @property
    def decision_mismatches(self) -> list[SiteOutcome]:
        return [o for o in self.outcomes if not o.match]

    @property
    def unexercised(self) -> list[SiteOutcome]:
        return [o for o in self.outcomes if not o.executed]

    @property
    def ok(self) -> bool:
        return (
            not self.decision_mismatches
            and not self.byte_mismatches
            and not self.unpredicted_patches
            and not self.tracecache_trap_mismatches
            and not self.tracecache_byte_mismatches
        )


def run_differential(
    binary: Binary,
    sites: list[DiscoveredSite] | None = None,
    max_instructions: int = 50_000_000,
) -> DifferentialResult:
    """Execute ``binary`` under online ABOM and diff against ``sites``.

    ``sites`` defaults to a fresh static discovery.  The binary must run
    to completion on :class:`CountingServices` (every example and test
    program does; arbitrary programs need their own harness).
    """
    if sites is None:
        sites = discover_binary_sites(binary)

    xc = XContainer(CountingServices())
    tracer = Tracer(xc.clock, capacity=65536)
    xc.attach_tracer(tracer)
    xc.run(binary, max_instructions=max_instructions)

    # Which sites actually trapped?  The X-Kernel traces every forwarded
    # syscall *before* ABOM patches it, so the first execution of every
    # site is always visible here.
    trapped = {
        event.detail["rip"]
        for event in tracer.events("syscall", "forwarded")
    }
    patched = set(xc.abom_stats.patched_sites)

    result = DifferentialResult(traps=len(trapped))
    for site in sites:
        result.outcomes.append(
            SiteOutcome(
                addr=site.syscall_addr,
                pattern=site.pattern.value,
                executed=site.syscall_addr in trapped,
                predicted_patch=site.abom_patchable,
                abom_patched=site.syscall_addr in patched,
            )
        )
    discovered_addrs = {site.syscall_addr for site in sites}
    result.unpredicted_patches = sorted(patched - discovered_addrs)

    # Offline pre-patching convergence: splice the predicted bytes for
    # every *exercised* patchable site into a copy of the text at rest;
    # the result must be byte-identical to what ABOM produced online.
    expected = bytearray(binary.code)
    for site in sites:
        if not (site.abom_patchable and site.syscall_addr in trapped):
            continue
        assert site.window is not None and site.predicted_bytes is not None
        start, length = site.window
        offset = start - binary.base
        expected[offset : offset + length] = site.predicted_bytes
    actual = xc.memory.read(binary.base, len(binary.code))
    if bytes(expected) != actual:
        result.byte_mismatches = _diff_regions(
            binary.base, bytes(expected), actual
        )

    # Trace-cache cross-check: the first run compiled hot superblocks
    # (tracecache=True is the XContainer default); replaying with the
    # compiler off must trap at exactly the same static sites and leave
    # byte-identical patched text — compiled traces may skip *decoding*
    # but must never hide or invent a syscall trap.
    xc_cold = XContainer(CountingServices(), tracecache=False)
    tracer_cold = Tracer(xc_cold.clock, capacity=65536)
    xc_cold.attach_tracer(tracer_cold)
    xc_cold.run(binary, max_instructions=max_instructions)
    trapped_cold = {
        event.detail["rip"]
        for event in tracer_cold.events("syscall", "forwarded")
    }
    result.tracecache_trap_mismatches = sorted(trapped ^ trapped_cold)
    actual_cold = xc_cold.memory.read(binary.base, len(binary.code))
    if actual_cold != actual:
        result.tracecache_byte_mismatches = _diff_regions(
            binary.base, actual, actual_cold
        )
    return result


def _diff_regions(
    base: int, expected: bytes, actual: bytes
) -> list[ByteMismatch]:
    """Contiguous regions where the two text images differ."""
    out: list[ByteMismatch] = []
    i = 0
    n = len(expected)
    while i < n:
        if expected[i] == actual[i]:
            i += 1
            continue
        j = i
        while j < n and expected[j] != actual[j]:
            j += 1
        out.append(ByteMismatch(base + i, expected[i:j], actual[i:j]))
        i = j
    return out
