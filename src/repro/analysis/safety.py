"""Patch-safety verification — the §4.4 argument, checked per site.

The paper argues ABOM's in-place rewrites are safe because

1. nothing jumps into the *interior* of a patched window — except jumps
   to the old ``syscall`` address, which land on the ``0x60 0xff`` tail
   of the 7-byte call, raise #UD, and are rewound by the X-Kernel's
   fixup handler;
2. both intermediate states of the two-phase 9-byte rewrite are
   semantically equivalent to the original (phase 1: ``call; syscall``
   double-dispatch prevented by the LibOS return-address check;
   phase 2: the trailing ``jmp -9`` re-enters the call).

This module turns both claims into checked invariants over the
recovered CFG and emits structured :class:`Finding` records.  An
:data:`~Severity.ERROR` finding means the static analysis *refutes*
patch safety for that binary; the CLI (and CI) gate on it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.analysis.cfg import CFG
from repro.analysis.sites import DiscoveredSite
from repro.arch.binary import SitePattern
from repro.arch.encoding import InvalidOpcode, decode, enc_jmp_rel8
from repro.core import vsyscall

_SYSCALL = b"\x0f\x05"
_JMP_BACK = enc_jmp_rel8(-9)


class Severity(enum.IntEnum):
    INFO = 0
    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Finding:
    """One verdict about one site (or about the binary as a whole)."""

    severity: Severity
    kind: str
    site: int
    message: str

    def render(self) -> str:
        return (
            f"{self.severity.name:7s} {self.kind:24s} "
            f"site={self.site:#x}  {self.message}"
        )


def verify_sites(
    cfg: CFG, sites: list[DiscoveredSite]
) -> list[Finding]:
    """Run the §4.4 safety checks for every discovered site."""
    findings: list[Finding] = []
    targets = cfg.landing_targets()
    for site in sites:
        if site.abom_patchable:
            findings.extend(_verify_online(site, targets))
        elif site.pattern is SitePattern.CANCELLABLE:
            findings.extend(_verify_offline_region(site, targets))
        elif site.pattern is SitePattern.BARE:
            findings.append(
                Finding(
                    Severity.INFO,
                    "unpatchable-site",
                    site.syscall_addr,
                    "bare syscall (%rax loaded far away); always forwarded",
                )
            )
        else:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "out-of-range-number",
                    site.syscall_addr,
                    f"{site.pattern.value} shape but the operand is outside "
                    "the vsyscall table; ABOM will leave it unpatched",
                )
            )
    if cfg.invalid_addrs:
        sample = ", ".join(
            hex(a) for a in sorted(cfg.invalid_addrs)[:4]
        )
        findings.append(
            Finding(
                Severity.WARNING,
                "undecodable-bytes",
                min(cfg.invalid_addrs),
                f"{len(cfg.invalid_addrs)} undecodable byte(s) reachable "
                f"from text ({sample}); control flow beyond them is unknown",
            )
        )
    return findings


# ----------------------------------------------------------------------
# Online (ABOM) windows
# ----------------------------------------------------------------------
def _verify_online(
    site: DiscoveredSite, targets: set[int]
) -> list[Finding]:
    assert site.window is not None and site.predicted_bytes is not None
    start, length = site.window
    syscall_addr = site.syscall_addr
    findings: list[Finding] = []
    interior = [t for t in targets if start < t < start + length]
    for t in interior:
        if t == syscall_addr:
            findings.extend(_verify_tail_jump(site, t))
        else:
            findings.append(
                Finding(
                    Severity.ERROR,
                    "interior-target",
                    syscall_addr,
                    f"CFG edge targets {t:#x}, byte {t - start} of the "
                    f"{length}-byte patch window [{start:#x}, "
                    f"{start + length:#x}); patching would make that jump "
                    "land mid-instruction with no fixup",
                )
            )
    if site.pattern is SitePattern.MOV_RAX_IMM:
        findings.extend(_verify_9byte_phases(site))
    return findings


def _verify_tail_jump(site: DiscoveredSite, t: int) -> list[Finding]:
    """A jump to the old ``syscall`` address: §4.4's special case."""
    assert site.window is not None and site.predicted_bytes is not None
    start, _ = site.window
    offset = t - start
    tail = site.predicted_bytes[offset : offset + 2]
    if site.pattern is SitePattern.MOV_RAX_IMM:
        # Final state puts ``jmp -9`` exactly where the syscall was, so
        # the jump re-enters the call; no #UD needed.
        if tail != _JMP_BACK:
            return [
                Finding(
                    Severity.ERROR,
                    "nine-byte-tail",
                    site.syscall_addr,
                    f"jump to the old syscall at {t:#x} would execute "
                    f"{tail.hex(' ')} instead of the expected jmp -9",
                )
            ]
        return [
            Finding(
                Severity.INFO,
                "nine-byte-tail",
                site.syscall_addr,
                f"jump targets the old syscall at {t:#x}; the phase-2 "
                "jmp -9 re-enters the patched call",
            )
        ]
    # 7-byte patterns: the tail must be the ``0x60 0xff`` #UD bait the
    # X-Kernel's fixup handler recognizes.
    if tail != b"\x60\xff":
        return [
            Finding(
                Severity.ERROR,
                "ud-fixup-tail",
                site.syscall_addr,
                f"jump to the old syscall at {t:#x} lands on "
                f"{tail.hex(' ')}, which the #UD fixup does not recognize",
            )
        ]
    return [
        Finding(
            Severity.INFO,
            "ud-fixup-tail",
            site.syscall_addr,
            f"jump targets the old syscall at {t:#x}; relies on the "
            "0x60 0xff #UD fixup in the X-Kernel",
        )
    ]


def _verify_9byte_phases(site: DiscoveredSite) -> list[Finding]:
    """Check both intermediate states of the two-phase rewrite.

    Phase 1 (call written over the mov, syscall still in place) and
    phase 2 (syscall overwritten with ``jmp -9``) must each decode to a
    sequence equivalent to the original site.
    """
    assert site.nr is not None and site.window is not None
    assert site.predicted_bytes is not None
    start, _ = site.window
    findings: list[Finding] = []
    call = site.predicted_bytes[:7]
    phase1 = call + _SYSCALL
    phase2 = call + _JMP_BACK
    for label, buf in (("phase-1", phase1), ("phase-2", phase2)):
        try:
            head = decode(buf, 0)
            tail = decode(buf, head.length)
        except InvalidOpcode as exc:
            findings.append(
                Finding(
                    Severity.ERROR,
                    "phase-equivalence",
                    site.syscall_addr,
                    f"{label} intermediate state does not decode: {exc}",
                )
            )
            continue
        ok = (
            head.mnemonic == "call_abs_ind"
            and head.operands[0] == vsyscall.slot_addr(site.nr)
        )
        if label == "phase-1":
            # The dangling syscall double-dispatches unless the LibOS
            # return-address check suppresses it — which requires the
            # syscall to sit exactly at the call's return address.
            ok = ok and tail.mnemonic == "syscall" and head.length == 7
        else:
            # The jmp must re-enter the call at the window start.
            resume = start + head.length + tail.length + tail.operands[0]
            ok = ok and tail.mnemonic == "jmp_rel8" and resume == start
        if not ok:
            findings.append(
                Finding(
                    Severity.ERROR,
                    "phase-equivalence",
                    site.syscall_addr,
                    f"{label} intermediate state is not semantically "
                    f"equivalent to the original site "
                    f"({head.mnemonic}; {tail.mnemonic})",
                )
            )
    return findings


# ----------------------------------------------------------------------
# Offline (cancellable wrapper) regions
# ----------------------------------------------------------------------
def _verify_offline_region(
    site: DiscoveredSite, targets: set[int]
) -> list[Finding]:
    assert site.region_start is not None
    region_start = site.region_start
    region_end = site.syscall_addr + 2
    interior = [t for t in targets if region_start < t < region_end]
    if not interior:
        return [
            Finding(
                Severity.INFO,
                "offline-patchable",
                site.syscall_addr,
                f"cancellable wrapper [{region_start:#x}, {region_end:#x}) "
                "is safe for the offline tool (no interior targets)",
            )
        ]
    listed = ", ".join(hex(t) for t in sorted(interior))
    return [
        Finding(
            Severity.WARNING,
            "offline-interior-target",
            site.syscall_addr,
            f"cancellable wrapper [{region_start:#x}, {region_end:#x}) has "
            f"interior CFG targets ({listed}); in-place offline patching "
            "would break those paths — leave to ABOM forwarding",
        )
    ]
