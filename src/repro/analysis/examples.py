"""Example binaries for the ``repro analyze`` subcommand and CI gate.

Each builder returns a small, self-contained program exercising one
corner of the §4.4 safety argument.  ``safe=True`` examples are the CI
gate: ``repro analyze`` (no arguments) must find nothing unsafe in any
of them.  The unsafe ones demonstrate the analyzer *refuting* patch
safety and are only analyzed when named explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.arch.assembler import Assembler
from repro.arch.binary import Binary
from repro.arch.encoding import enc_jmp_rel32
from repro.arch.registers import Reg


@dataclass(frozen=True)
class Example:
    name: str
    description: str
    build: Callable[[], Binary]
    #: Safe examples are the default (CI-gating) set.
    safe: bool = True
    #: Whether the binary can run to completion for the differential.
    runnable: bool = True


def _figure2() -> Binary:
    """Every Figure-2 / Table-1 site shape, each executed once."""
    asm = Assembler(base=0x400000)
    asm.entry()
    asm.syscall_site(0, style="mov_eax", symbol="__read")
    asm.syscall_site(15, style="mov_rax", symbol="__restore_rt")
    asm.mov_imm64_low(Reg.RCX, 1)
    asm.store_rsp64(8, Reg.RCX)
    asm.syscall_site(1, style="go_stack", symbol="go_syscall")
    asm.syscall_site(3, style="cancellable", symbol="pthread_close")
    # %rax zeroed by an ALU op, not a mov: a genuinely bare site.
    asm.xor(Reg.RAX, Reg.RAX)
    asm.syscall_site(0, style="bare", symbol="bare_read")
    asm.hlt()
    return asm.build("figure2")


def _patched_loop() -> Binary:
    """The abom-demo shape: two sites re-executed inside a loop."""
    asm = Assembler(base=0x400000)
    asm.entry()
    asm.mov_imm32(Reg.RBX, 3)
    asm.label("loop")
    asm.syscall_site(0, style="mov_eax", symbol="__read")
    asm.syscall_site(15, style="mov_rax", symbol="__restore_rt")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build("patched_loop")


def _tail_jump() -> Binary:
    """Jumps to the *old syscall address* of a patched site (§4.4).

    Statically this is the one interior target the #UD fixup makes
    legal; the analyzer must report it as safe-with-fixup, not unsafe.
    """
    asm = Assembler(base=0x400000)
    asm.entry()
    asm.mov_imm32(Reg.RBX, 2)
    asm.label("loop")
    site = asm.syscall_site(0, style="mov_eax", symbol="__read")
    asm.dec(Reg.RBX)
    asm.je("done")
    # Re-enter at the old syscall address, skipping the mov: after the
    # 7-byte patch this lands on the 0x60 0xff tail and #UDs.
    asm.raw(enc_jmp_rel32(site.syscall_addr - (asm.here + 5)))
    asm.label("done")
    asm.hlt()
    return asm.build("tail_jump")


def _interior_jump() -> Binary:
    """Jumps into the immediate of the ``mov`` — genuinely unsafe.

    The target is byte 2 of the 7-byte window; after patching it would
    land mid-``call`` with no fixup.  The jump is dynamically dead (the
    guard branch always skips it) so the program still runs, but the
    static analyzer must refuse to certify the binary.
    """
    asm = Assembler(base=0x400000)
    asm.entry()
    asm.xor(Reg.RBX, Reg.RBX)
    asm.cmp(Reg.RBX, 0)
    asm.je("site")
    asm.label("bad_jump")
    # mov starts at syscall_addr - 5; target its imm32 at offset +2.
    # The site below is emitted right after this 5-byte jmp.
    asm.raw(enc_jmp_rel32((asm.here + 5 + 2) - (asm.here + 5)))
    asm.label("site")
    asm.syscall_site(0, style="mov_eax", symbol="__read")
    asm.hlt()
    return asm.build("interior_jump")


def _data_in_text() -> Binary:
    """Embedded data after unconditional control flow.

    Recursive descent must not decode the data; the linear disassembler
    must render it as ``.byte`` lines and resync.
    """
    asm = Assembler(base=0x400000)
    asm.entry()
    asm.syscall_site(0, style="mov_eax", symbol="__read")
    asm.jmp("over")
    asm.raw(b"\x60\x61\x06\x07")  # data: invalid in 64-bit mode
    asm.label("over")
    asm.hlt()
    return asm.build("data_in_text")


EXAMPLES: dict[str, Example] = {
    example.name: example
    for example in (
        Example(
            "figure2",
            "all Figure-2 / Table-1 site shapes, executed once each",
            _figure2,
        ),
        Example(
            "patched_loop",
            "the abom-demo loop: 7-byte and 9-byte sites re-executed",
            _patched_loop,
        ),
        Example(
            "tail_jump",
            "jump to the old syscall address (#UD-fixup case, §4.4)",
            _tail_jump,
        ),
        Example(
            "data_in_text",
            "data bytes embedded in the text segment",
            _data_in_text,
        ),
        Example(
            "interior_jump",
            "jump into a patch window's interior — statically unsafe",
            _interior_jump,
            safe=False,
        ),
    )
}


def safe_examples() -> list[Example]:
    return [example for example in EXAMPLES.values() if example.safe]
