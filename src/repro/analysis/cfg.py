"""Recursive-descent CFG recovery over a binary's text bytes.

The §4.4 safety argument for ABOM is a *static* claim: no branch target
may land inside a patched window except the ``0x60 0xff`` tail that the
#UD fixup catches.  Verifying it requires knowing every address control
flow can land on, which is exactly what a control-flow graph gives us.

Recovery runs in two passes:

1. **Instruction discovery** — depth-first decode from the entry points
   (program entry plus every symbol), following direct jumps, branches
   and calls.  Instruction boundaries come from the decoder itself, so
   the graph sees the same bytes the interpreter executes.  Undecodable
   bytes end the path and are recorded (data embedded in text, or the
   ``0x60 0xff`` tail of an already-patched call).
2. **Block construction** — leaders are the entry points plus every
   in-text control-transfer target plus every trap-resume address; the
   decoded instructions are grouped into maximal straight-line runs
   between leaders and terminators.

Indirect control flow in the modeled subset is benign by construction:
``callq *disp32`` names its slot address in the instruction (and in this
platform always targets the vsyscall page, i.e. outside text), and
``ret`` can only return to the instruction after some discovered call.
Both are still surfaced via :attr:`CFG.external_targets` /
:attr:`CFG.invalid_addrs` so the safety pass can refuse to certify what
it cannot see.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.arch.binary import Binary
from repro.arch.encoding import Instruction, InvalidOpcode, decode

#: Mnemonics whose targets are direct (relative) and statically known.
_DIRECT_JUMPS = frozenset({"jmp_rel8", "jmp_rel32"})
_COND_BRANCHES = frozenset({"je_rel8", "jne_rel8", "jl_rel8", "jg_rel8"})
#: Mnemonics that never fall through.
_NO_FALLTHROUGH = frozenset({"jmp_rel8", "jmp_rel32", "ret", "hlt"})


class EdgeKind(enum.Enum):
    """How control moves from one place to another."""

    FALLTHROUGH = "fallthrough"
    JUMP = "jump"
    BRANCH = "branch"
    CALL = "call"
    #: Where a call resumes after the callee returns.
    CALL_RETURN = "call-return"
    #: Resumption after a trapping instruction (syscall/int3).
    TRAP_RESUME = "trap-resume"


@dataclass(frozen=True)
class Edge:
    """One CFG edge: ``src`` is the transferring instruction's address."""

    src: int
    dst: int
    kind: EdgeKind


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions."""

    start: int
    instructions: list[tuple[int, Instruction]]

    @property
    def end(self) -> int:
        """Address one past the last instruction."""
        addr, instr = self.instructions[-1]
        return addr + instr.length

    @property
    def terminator(self) -> Instruction:
        return self.instructions[-1][1]

    def __contains__(self, addr: int) -> bool:
        return self.start <= addr < self.end


@dataclass
class CFG:
    """Recovered control-flow graph of one binary's text."""

    base: int
    end: int
    entries: tuple[int, ...]
    #: Every decoded instruction, keyed by address.
    instructions: dict[int, Instruction]
    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    edges: list[Edge] = field(default_factory=list)
    #: Direct targets outside ``[base, end)`` (e.g. vsyscall slots).
    external_targets: set[int] = field(default_factory=set)
    #: Addresses where decoding failed (data in text, patch tails).
    invalid_addrs: set[int] = field(default_factory=set)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def successors(self, block_start: int) -> list[Edge]:
        block = self.blocks[block_start]
        last_addr = block.instructions[-1][0]
        return [e for e in self.edges if e.src == last_addr]

    def predecessors(self, block_start: int) -> list[Edge]:
        return [e for e in self.edges if e.dst == block_start]

    def block_containing(self, addr: int) -> BasicBlock | None:
        for block in self.blocks.values():
            if addr in block:
                return block
        return None

    def landing_targets(self) -> set[int]:
        """Every in-text address control flow can *land* on non-sequentially.

        This is the set the §4.4 window checks are run against: jump and
        branch targets, call targets, call-return resumption points, and
        trap resumption points.  Sequential fall-through within a block
        cannot land mid-window because instruction boundaries forbid it.
        """
        out = set(self.entries)
        for edge in self.edges:
            if edge.kind is not EdgeKind.FALLTHROUGH:
                out.add(edge.dst)
        return {t for t in out if self.base <= t < self.end}

    def syscall_addrs(self) -> list[int]:
        """Addresses of every reachable ``syscall`` instruction."""
        return sorted(
            addr for addr, instr in self.instructions.items()
            if instr.mnemonic == "syscall"
        )

    def instruction_before(self, addr: int) -> tuple[int, Instruction] | None:
        """The instruction that straight-line flows into ``addr``, if any.

        Returns the unique decoded instruction ending exactly at ``addr``
        that is not a no-fallthrough terminator — i.e. walking backwards
        one step through the CFG.
        """
        for back in range(1, 16):
            prev = self.instructions.get(addr - back)
            if prev is None:
                continue
            if addr - back + prev.length != addr:
                return None
            if prev.mnemonic in _NO_FALLTHROUGH:
                return None
            return addr - back, prev
        return None


def recover_cfg(
    code: bytes, base: int, entries: tuple[int, ...] | list[int]
) -> CFG:
    """Recursive-descent disassembly of ``code`` mapped at ``base``."""
    end = base + len(code)

    def in_text(addr: int) -> bool:
        return base <= addr < end

    entry_list = tuple(sorted({a for a in entries if in_text(a)}))

    instructions: dict[int, Instruction] = {}
    edges: list[Edge] = []
    external: set[int] = set()
    invalid: set[int] = set()
    leaders: set[int] = set(entry_list)

    worklist: list[int] = list(entry_list)
    visited: set[int] = set()

    def transfer(src: int, dst: int, kind: EdgeKind) -> None:
        edges.append(Edge(src, dst, kind))
        if in_text(dst):
            leaders.add(dst)
            worklist.append(dst)
        else:
            external.add(dst)

    while worklist:
        addr = worklist.pop()
        while in_text(addr) and addr not in visited:
            visited.add(addr)
            try:
                instr = decode(code, addr - base)
            except InvalidOpcode:
                invalid.add(addr)
                break
            instructions[addr] = instr
            nxt = addr + instr.length
            name = instr.mnemonic
            if name in _DIRECT_JUMPS:
                transfer(addr, nxt + instr.operands[0], EdgeKind.JUMP)
                break
            if name in _COND_BRANCHES:
                transfer(addr, nxt + instr.operands[0], EdgeKind.BRANCH)
                edges.append(Edge(addr, nxt, EdgeKind.FALLTHROUGH))
                addr = nxt
                continue
            if name == "call_rel32":
                transfer(addr, nxt + instr.operands[0], EdgeKind.CALL)
                transfer(addr, nxt, EdgeKind.CALL_RETURN)
                break
            if name == "call_abs_ind":
                # The operand is the *slot* address the target is loaded
                # from; on this platform that is the vsyscall page, i.e.
                # always external to text.
                transfer(addr, instr.operands[0], EdgeKind.CALL)
                transfer(addr, nxt, EdgeKind.CALL_RETURN)
                break
            if name in ("syscall", "int3"):
                transfer(addr, nxt, EdgeKind.TRAP_RESUME)
                break
            if name in ("ret", "hlt"):
                break
            addr = nxt

    cfg = CFG(
        base=base,
        end=end,
        entries=entry_list,
        instructions=instructions,
        edges=edges,
        external_targets=external,
        invalid_addrs=invalid,
    )
    _build_blocks(cfg, leaders)
    return cfg


def _build_blocks(cfg: CFG, leaders: set[int]) -> None:
    """Group decoded instructions into maximal blocks between leaders."""
    addrs = sorted(cfg.instructions)
    current: BasicBlock | None = None
    for addr in addrs:
        instr = cfg.instructions[addr]
        if current is None or addr in leaders or current.end != addr:
            if current is not None:
                cfg.blocks[current.start] = current
            current = BasicBlock(start=addr, instructions=[])
        current.instructions.append((addr, instr))
        ends_block = (
            instr.mnemonic in _NO_FALLTHROUGH
            or instr.mnemonic in _COND_BRANCHES
            or instr.mnemonic in ("call_rel32", "call_abs_ind")
            or instr.mnemonic in ("syscall", "int3")
        )
        if ends_block:
            cfg.blocks[current.start] = current
            current = None
    if current is not None:
        cfg.blocks[current.start] = current
    # A block split by a leader (not by a terminator) falls through into
    # the next block; record that edge so successor queries see it.
    terminators = (
        _NO_FALLTHROUGH | _COND_BRANCHES
        | {"call_rel32", "call_abs_ind", "syscall", "int3"}
    )
    for block in cfg.blocks.values():
        last_addr, last = block.instructions[-1]
        if last.mnemonic not in terminators and block.end in cfg.blocks:
            cfg.edges.append(
                Edge(last_addr, block.end, EdgeKind.FALLTHROUGH)
            )


def recover_binary_cfg(binary: Binary) -> CFG:
    """CFG of ``binary`` from its entry point and all symbols."""
    entries = [binary.entry, *binary.symbols.values()]
    return recover_cfg(binary.code, binary.base, entries)
