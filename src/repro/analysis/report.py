"""Whole-binary analysis: CFG + sites + safety + differential, rendered.

This is the entry point the CLI (and CI) consume: one call produces an
:class:`AnalysisReport` whose :attr:`~AnalysisReport.has_unsafe` drives
the process exit code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import CFG, recover_binary_cfg
from repro.analysis.differential import DifferentialResult, run_differential
from repro.analysis.safety import Finding, Severity, verify_sites
from repro.analysis.sites import DiscoveredSite, discover_sites
from repro.arch.binary import Binary


@dataclass
class AnalysisReport:
    """Everything the static analyzer concluded about one binary."""

    binary_name: str
    cfg: CFG
    sites: list[DiscoveredSite]
    findings: list[Finding]
    differential: DifferentialResult | None

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def has_unsafe(self) -> bool:
        """True when CI must fail: a safety ERROR or a differential
        mismatch between the static model and online ABOM."""
        if self.errors:
            return True
        return self.differential is not None and not self.differential.ok

    def as_dict(self) -> dict:
        """JSON-ready view (``repro analyze --format json``)."""
        by_site: dict[int, list[Finding]] = {}
        for finding in self.findings:
            by_site.setdefault(finding.site, []).append(finding)
        data: dict = {
            "binary": self.binary_name,
            "cfg": {
                "blocks": len(self.cfg.blocks),
                "edges": len(self.cfg.edges),
                "instructions": len(self.cfg.instructions),
                "undecodable_bytes": len(self.cfg.invalid_addrs),
            },
            "sites": [
                {
                    "addr": hex(site.syscall_addr),
                    "pattern": site.pattern.value,
                    "nr": site.nr,
                    "abom_patchable": site.abom_patchable,
                    "verdict": self._verdict(
                        by_site.get(site.syscall_addr, [])
                    ),
                }
                for site in self.sites
            ],
            "findings": [
                {
                    "severity": f.severity.name,
                    "kind": f.kind,
                    "site": hex(f.site),
                    "message": f.message,
                }
                for f in self.findings
            ],
            "has_unsafe": self.has_unsafe,
        }
        if self.differential is not None:
            diff = self.differential
            data["differential"] = {
                "sites": len(diff.outcomes),
                "exercised": sum(1 for o in diff.outcomes if o.executed),
                "decision_mismatches": len(diff.decision_mismatches),
                "byte_mismatch_regions": len(diff.byte_mismatches),
                "tracecache_trap_mismatches": len(
                    diff.tracecache_trap_mismatches
                ),
                "tracecache_byte_mismatch_regions": len(
                    diff.tracecache_byte_mismatches
                ),
                "ok": diff.ok,
            }
        return data

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        lines = [
            f"=== {self.binary_name} ===",
            f"cfg: {len(self.cfg.blocks)} blocks, "
            f"{len(self.cfg.edges)} edges, "
            f"{len(self.cfg.instructions)} instructions, "
            f"{len(self.cfg.invalid_addrs)} undecodable byte(s)",
            "",
            f"{'site':>10s}  {'pattern':12s} {'nr':>5s}  "
            f"{'online':7s} {'verdict'}",
        ]
        by_site: dict[int, list[Finding]] = {}
        for finding in self.findings:
            by_site.setdefault(finding.site, []).append(finding)
        for site in self.sites:
            verdict = self._verdict(by_site.get(site.syscall_addr, []))
            nr = "-" if site.nr is None else str(site.nr)
            patchable = "yes" if site.abom_patchable else "no"
            lines.append(
                f"{site.syscall_addr:#10x}  {site.pattern.value:12s} "
                f"{nr:>5s}  {patchable:7s} {verdict}"
            )
        if self.findings:
            lines.append("")
            lines.append("findings:")
            lines.extend(f"  {f.render()}" for f in self.findings)
        if self.differential is not None:
            lines.append("")
            lines.extend(self._render_differential(self.differential))
        return "\n".join(lines)

    @staticmethod
    def _verdict(findings: list[Finding]) -> str:
        if any(f.severity is Severity.ERROR for f in findings):
            return "UNSAFE"
        if any(f.kind == "ud-fixup-tail" for f in findings):
            return "SAFE (needs #UD fixup)"
        if any(f.severity is Severity.WARNING for f in findings):
            return "SAFE (with warnings)"
        return "SAFE"

    @staticmethod
    def _render_differential(diff: DifferentialResult) -> list[str]:
        executed = sum(1 for o in diff.outcomes if o.executed)
        lines = [
            f"differential vs online ABOM: {len(diff.outcomes)} sites, "
            f"{executed} exercised, "
            f"{len(diff.decision_mismatches)} decision mismatch(es), "
            f"{len(diff.byte_mismatches)} byte mismatch region(s)",
        ]
        for outcome in diff.decision_mismatches:
            lines.append(
                f"  MISMATCH {outcome.addr:#x} ({outcome.pattern}): "
                f"static predicted patch={outcome.predicted_patch}, "
                f"ABOM patched={outcome.abom_patched}"
            )
        for miss in diff.byte_mismatches:
            lines.append(
                f"  BYTES    {miss.addr:#x}: expected "
                f"{miss.expected.hex(' ')} got {miss.actual.hex(' ')}"
            )
        for addr in diff.unpredicted_patches:
            lines.append(
                f"  MISMATCH {addr:#x}: ABOM patched a site static "
                "discovery never found"
            )
        for addr in diff.tracecache_trap_mismatches:
            lines.append(
                f"  MISMATCH {addr:#x}: trap site differs between the "
                "tracecache=True and tracecache=False runs"
            )
        for miss in diff.tracecache_byte_mismatches:
            lines.append(
                f"  BYTES    {miss.addr:#x}: tracecache=True left "
                f"{miss.expected.hex(' ')}, tracecache=False left "
                f"{miss.actual.hex(' ')}"
            )
        for outcome in diff.unexercised:
            lines.append(
                f"  note     {outcome.addr:#x} ({outcome.pattern}) was "
                "never executed; online ABOM could not see it"
            )
        if diff.ok:
            lines.append(
                "  static model and online ABOM agree "
                "(trace cache on and off)"
            )
        return lines


def analyze(binary: Binary, differential: bool = True) -> AnalysisReport:
    """Run the full static pipeline over ``binary``.

    ``differential=True`` additionally executes the binary under online
    ABOM and diffs the outcomes; leave it off for binaries that cannot
    run to completion on the counting backend.
    """
    cfg = recover_binary_cfg(binary)
    sites = discover_sites(cfg, binary.code, binary.base)
    findings = verify_sites(cfg, sites)
    diff = run_differential(binary, sites) if differential else None
    return AnalysisReport(
        binary_name=binary.name,
        cfg=cfg,
        sites=sites,
        findings=findings,
        differential=diff,
    )
