"""Static binary analysis for the §4.4 safety argument.

ABOM's patch safety is inherently a *static* claim — no branch target
may land inside a patched window except the ``0x60 0xff`` tail the #UD
fixup catches, and both intermediate states of the two-phase 9-byte
rewrite must stay semantically equivalent.  The rest of the repository
exercises those properties dynamically; this package proves (or
refutes) them from the bytes alone:

* :mod:`repro.analysis.cfg` — recursive-descent disassembly and CFG
  recovery (basic blocks, edges, landing targets);
* :mod:`repro.analysis.sites` — static ``syscall`` discovery and
  :class:`~repro.arch.binary.SitePattern` classification, replacing the
  offline patcher's hand-written symbol lists;
* :mod:`repro.analysis.safety` — the §4.4 window and phase-equivalence
  checks, emitting structured :class:`~repro.analysis.safety.Finding`
  records;
* :mod:`repro.analysis.differential` — static predictions diffed
  against online ABOM's actual decisions and final bytes;
* :mod:`repro.analysis.report` — the assembled per-binary report the
  ``repro analyze`` CLI and CI gate consume;
* :mod:`repro.analysis.examples` — example binaries for the CLI/CI.
"""

from repro.analysis.cfg import (
    CFG,
    BasicBlock,
    Edge,
    EdgeKind,
    recover_binary_cfg,
    recover_cfg,
)
from repro.analysis.differential import (
    DifferentialResult,
    SiteOutcome,
    run_differential,
)
from repro.analysis.report import AnalysisReport, analyze
from repro.analysis.safety import Finding, Severity, verify_sites
from repro.analysis.sites import (
    DiscoveredSite,
    discover_binary_sites,
    discover_sites,
    reconcile_with_metadata,
)

__all__ = [
    "CFG",
    "BasicBlock",
    "Edge",
    "EdgeKind",
    "recover_cfg",
    "recover_binary_cfg",
    "DiscoveredSite",
    "discover_sites",
    "discover_binary_sites",
    "reconcile_with_metadata",
    "Finding",
    "Severity",
    "verify_sites",
    "DifferentialResult",
    "SiteOutcome",
    "run_differential",
    "AnalysisReport",
    "analyze",
]
