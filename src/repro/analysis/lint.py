"""Determinism lint: a static AST pass over the simulation sources.

The whole repository's value proposition is byte-identical replay: same
seed ⇒ same simulated results, same chaos outcomes, same sanitizer
findings.  Three classes of Python idiom silently break that promise:

* **wall-clock reads** (``time.time()``, ``datetime.now()``...) — the
  simulation owns time through :class:`~repro.perf.clock.SimClock`;
* **unseeded randomness** (module-level ``random.*``, ``random.Random()``
  with no seed, ``uuid.uuid4``, ``os.urandom``...) — all randomness must
  flow through :class:`~repro.perf.rand.DeterministicRng`;
* **set-iteration order** (``for x in {...}`` / ``for x in set(...)``) —
  set iteration order depends on insertion *and* hash seed; simulation
  paths must iterate ``sorted(...)`` or a list/dict instead.

Modules on the :data:`ALLOWLIST` (the CLI and the telemetry exporters,
which legitimately talk to the outside world) are exempt.  Run it as::

    python -m repro.analysis.lint src/repro

which exits 1 if any issue is found — the CI static-analysis gate.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

#: Path suffixes (relative, ``/``-separated) exempt from the lint: the
#: process edge, where wall-clock and host entropy are legitimate.
ALLOWLIST: tuple[str, ...] = (
    "repro/cli.py",
    "repro/__main__.py",
    "repro/obs/exporters.py",
)

#: ``module.attr`` call targets that read the host wall clock.
WALL_CLOCK_CALLS: frozenset[str] = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
})

#: ``module.attr`` call targets that draw host entropy.
ENTROPY_CALLS: frozenset[str] = frozenset({
    "uuid.uuid1",
    "uuid.uuid4",
    "os.urandom",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.token_urlsafe",
    "secrets.randbelow",
    "secrets.choice",
})


@dataclass(frozen=True)
class LintIssue:
    """One determinism violation at a concrete source location."""

    path: str
    line: int
    rule: str  # "wall-clock" | "unseeded-random" | "set-iteration"
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _dotted(node: ast.expr) -> str:
    """``a.b.c`` for attribute chains, ``name`` for bare names, else ''."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _DeterminismVisitor(ast.NodeVisitor):
    """Collects determinism violations from one module's AST."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.issues: list[LintIssue] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        self.issues.append(LintIssue(self.path, line, rule, message))

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        target = _dotted(node.func)
        tail = ".".join(target.split(".")[-2:])
        if tail in WALL_CLOCK_CALLS:
            self._flag(
                node, "wall-clock",
                f"{target}() reads the host clock; use SimClock",
            )
        elif tail in ENTROPY_CALLS:
            self._flag(
                node, "unseeded-random",
                f"{target}() draws host entropy; use DeterministicRng",
            )
        elif target.startswith("random.") or ".random." in f".{target}":
            # Module-level random.* (incl. numpy.random.*): the shared,
            # process-global generator — unseeded unless someone seeded
            # it far away, which is exactly the hazard.
            if target.endswith(".Random") or target.endswith(".default_rng"):
                if not node.args and not node.keywords:
                    self._flag(
                        node, "unseeded-random",
                        f"{target}() without a seed; pass an explicit seed",
                    )
            else:
                self._flag(
                    node, "unseeded-random",
                    f"module-level {target}(); use DeterministicRng",
                )
        self.generic_visit(node)

    # -- imports -------------------------------------------------------
    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            clocks = sorted(
                alias.name for alias in node.names
                if f"time.{alias.name}" in WALL_CLOCK_CALLS
            )
            if clocks:
                self._flag(
                    node, "wall-clock",
                    f"from time import {', '.join(clocks)}; use SimClock",
                )
        self.generic_visit(node)

    # -- iteration order -----------------------------------------------
    def _check_iter(self, node: ast.expr) -> None:
        if isinstance(node, ast.Set):
            self._flag(
                node, "set-iteration",
                "iterating a set literal; order is hash-dependent "
                "— iterate sorted(...) or a list",
            )
        elif isinstance(node, ast.Call):
            target = _dotted(node.func)
            if target in ("set", "frozenset"):
                self._flag(
                    node, "set-iteration",
                    f"iterating {target}(...); order is hash-dependent "
                    "— iterate sorted(...) or a list",
                )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)


def _allowed(path: Path) -> bool:
    normalized = path.as_posix()
    return any(normalized.endswith(suffix) for suffix in ALLOWLIST)


def lint_source(source: str, path: str = "<string>") -> list[LintIssue]:
    """Lint one module's source text."""
    visitor = _DeterminismVisitor(path)
    visitor.visit(ast.parse(source, filename=path))
    return sorted(
        visitor.issues, key=lambda i: (i.path, i.line, i.rule, i.message)
    )


def lint_paths(paths: Iterable[str | Path]) -> list[LintIssue]:
    """Lint every ``*.py`` under each path (files or directories)."""
    issues: list[LintIssue] = []
    for root in paths:
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            if _allowed(file):
                continue
            issues.extend(
                lint_source(file.read_text(encoding="utf-8"), str(file))
            )
    return sorted(
        issues, key=lambda i: (i.path, i.line, i.rule, i.message)
    )


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    targets = argv or ["src/repro"]
    issues = lint_paths(targets)
    for issue in issues:
        print(issue.render())
    print(
        f"determinism lint: {len(issues)} issue(s) in "
        f"{', '.join(targets)}"
    )
    return 1 if issues else 0


if __name__ == "__main__":
    sys.exit(main())
