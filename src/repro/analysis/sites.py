"""Static syscall-site discovery and classification.

ABOM (§4.4) decides what to patch from the raw bytes in front of a
trapping ``syscall``; the offline tool (§5.2) needs a human-supplied
symbol list.  This module removes the human: it finds every ``syscall``
in the recovered CFG and classifies it into the same
:class:`~repro.arch.binary.SitePattern` taxonomy the rest of the
repository uses, by

* **byte matching** for the three Figure-2 shapes, mirroring ABOM's own
  matcher exactly (same windows, same number/displacement range checks,
  same precedence) so the differential checker can demand zero
  prediction mismatches, and
* **CFG back-walking** for everything else: a straight-line walk
  backwards from the ``syscall`` looking for the ``mov $nr,%eax`` of a
  libpthread-style cancellable wrapper, stopping at control transfers,
  merges, and anything that clobbers %rax on the way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.cfg import CFG, recover_binary_cfg
from repro.arch.binary import Binary, SitePattern, SyscallSite
from repro.arch.encoding import Instruction, enc_call_abs_ind, enc_jmp_rel8
from repro.arch.registers import Reg
from repro.core import vsyscall

#: How far back the cancellable-wrapper walk goes, in bytes.  Matches the
#: offline patcher's trampoline search window.
CANCELLABLE_MAX_BACK = 64

_JMP_BACK = enc_jmp_rel8(-9)


@dataclass(frozen=True)
class DiscoveredSite:
    """One statically discovered ``syscall`` site."""

    syscall_addr: int
    pattern: SitePattern
    #: Statically known syscall number (None for GO_STACK/BARE).
    nr: int | None
    #: Go-pattern stack displacement the number is loaded from.
    disp: int | None
    #: Start of the setup instruction / wrapper region (None for BARE).
    region_start: int | None
    #: True when ABOM's byte matcher would patch this site online.
    abom_patchable: bool
    #: Patch window ``(start, length)`` ABOM would rewrite, if patchable.
    window: tuple[int, int] | None
    #: Final bytes ABOM would leave in the window, if patchable.
    predicted_bytes: bytes | None

    def to_syscall_site(self, symbol: str = "") -> SyscallSite:
        """Convert to the metadata record the offline patcher consumes."""
        return SyscallSite(self.syscall_addr, self.pattern, self.nr, symbol)


def discover_sites(cfg: CFG, code: bytes, base: int) -> list[DiscoveredSite]:
    """Find and classify every reachable ``syscall`` in ``cfg``."""
    return [
        _classify(cfg, code, base, addr) for addr in cfg.syscall_addrs()
    ]


def discover_binary_sites(binary: Binary) -> list[DiscoveredSite]:
    cfg = recover_binary_cfg(binary)
    return discover_sites(cfg, binary.code, binary.base)


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
def _classify(
    cfg: CFG, code: bytes, base: int, syscall_addr: int
) -> DiscoveredSite:
    # Byte-level matching first, in ABOM's own precedence order
    # (9-byte, then mov-eax, then Go); the windows are mutually
    # exclusive, but the order is kept identical on principle.
    byte_match: DiscoveredSite | None = None
    window9 = _window(code, base, syscall_addr, 7)
    window7 = _window(code, base, syscall_addr, 5)
    if window9 is not None and window9[:3] == b"\x48\xc7\xc0":
        nr = int.from_bytes(window9[3:7], "little")
        patchable = nr < vsyscall.NUM_SYSCALLS
        byte_match = DiscoveredSite(
            syscall_addr,
            SitePattern.MOV_RAX_IMM,
            nr,
            None,
            syscall_addr - 7,
            patchable,
            (syscall_addr - 7, 9) if patchable else None,
            _predict_9byte(nr) if patchable else None,
        )
    elif window7 is not None and window7[0] == 0xB8:
        nr = int.from_bytes(window7[1:5], "little")
        patchable = nr < vsyscall.NUM_SYSCALLS
        byte_match = DiscoveredSite(
            syscall_addr,
            SitePattern.MOV_EAX_IMM,
            nr,
            None,
            syscall_addr - 5,
            patchable,
            (syscall_addr - 5, 7) if patchable else None,
            enc_call_abs_ind(vsyscall.slot_addr(nr)) if patchable else None,
        )
    elif window7 is not None and window7[:4] == b"\x48\x8b\x44\x24":
        disp = window7[4]
        patchable = disp in vsyscall.DYNAMIC_DISPS
        byte_match = DiscoveredSite(
            syscall_addr,
            SitePattern.GO_STACK,
            None,
            disp,
            syscall_addr - 5,
            patchable,
            (syscall_addr - 5, 7) if patchable else None,
            enc_call_abs_ind(vsyscall.dynamic_slot_addr(disp))
            if patchable
            else None,
        )
    if byte_match is not None and byte_match.abom_patchable:
        return byte_match
    # No patchable byte shape: walk the CFG backwards for a cancellable
    # wrapper.  This also reclassifies coincidental byte matches — a
    # wrapper whose immediate bytes happen to start with 0xb8 looks like
    # an (out-of-range, unpatchable) mov-eax shape to ABOM, but the CFG
    # sees the real mov at the head of the wrapper.
    found = _walk_back_for_mov(cfg, syscall_addr)
    if found is not None:
        mov_addr, nr = found
        return DiscoveredSite(
            syscall_addr,
            SitePattern.CANCELLABLE,
            nr,
            None,
            mov_addr,
            False,
            None,
            None,
        )
    if byte_match is not None:
        return byte_match
    return DiscoveredSite(
        syscall_addr, SitePattern.BARE, None, None, None, False, None, None
    )


def _window(
    code: bytes, base: int, syscall_addr: int, back: int
) -> bytes | None:
    """The ``back`` bytes before the syscall, if they are inside text."""
    start = syscall_addr - back - base
    if start < 0:
        return None
    return code[start : start + back]


def _predict_9byte(nr: int) -> bytes:
    """Final (phase-2) bytes of the two-phase 9-byte rewrite."""
    return enc_call_abs_ind(vsyscall.slot_addr(nr)) + _JMP_BACK


def _writes_rax(instr: Instruction) -> bool:
    """Conservatively: does this instruction clobber %rax?"""
    name = instr.mnemonic
    if name in ("syscall", "call_rel32", "call_abs_ind"):
        return True  # return values / callee-clobbered
    if name in (
        "mov_r32_imm32", "mov_r64_imm32", "mov_r64_r64", "mov_r32_r32",
        "mov_r32_rsp_disp8", "mov_r64_rsp_disp8", "pop_r64",
        "add_r64_imm8", "sub_r64_imm8", "inc_r64", "dec_r64",
        "xor_r32_r32", "xor_r64_r64",
    ):
        return instr.operands[0] == Reg.RAX
    return False


def _walk_back_for_mov(
    cfg: CFG, syscall_addr: int
) -> tuple[int, int] | None:
    """Find the ``mov $nr,%eax``/``%rax`` heading a cancellable wrapper.

    Walks straight-line predecessors from the ``syscall``.  The walk
    stops — classifying the site as BARE — when it leaves the window,
    crosses a control transfer, or passes an instruction that writes
    %rax.  It deliberately walks *through* interior jump targets: the
    wrapper region is still syntactically there, and the safety verifier
    separately flags the interior target so the offline patcher skips
    the site instead of breaking the merging path.
    """
    cursor = syscall_addr
    while syscall_addr - cursor <= CANCELLABLE_MAX_BACK:
        prev = cfg.instruction_before(cursor)
        if prev is None:
            return None
        prev_addr, instr = prev
        if instr.mnemonic in ("mov_r32_imm32", "mov_r64_imm32") and (
            instr.operands[0] == Reg.RAX
        ):
            if cursor == syscall_addr:
                return None  # adjacent mov: a Figure-2 shape, not ours
            nr = instr.operands[1] & 0xFFFFFFFF
            return prev_addr, nr
        if _writes_rax(instr):
            return None
        cursor = prev_addr
    return None


# ----------------------------------------------------------------------
# Reconciliation with declared metadata
# ----------------------------------------------------------------------
def reconcile_with_metadata(
    discovered: list[DiscoveredSite], binary: Binary
) -> list[tuple[SyscallSite, DiscoveredSite | None]]:
    """Pair each declared :class:`SyscallSite` with its discovered twin.

    Returns ``(declared, discovered-or-None)`` pairs; a ``None`` means
    the declared site was not statically reachable (dead code, or text
    reached only through indirect flow the CFG cannot see).
    """
    by_addr = {site.syscall_addr: site for site in discovered}
    return [
        (declared, by_addr.get(declared.syscall_addr))
        for declared in binary.sites
    ]
