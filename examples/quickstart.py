#!/usr/bin/env python3
"""Quickstart: run a binary inside an X-Container and watch ABOM work.

Builds a real x86-64 program (a getpid loop using the glibc wrapper shape
from Figure 2 of the paper), runs it inside an X-Container, and shows:

* the first invocation trapping into the X-Kernel and being patched;
* every later invocation taking the lightweight function-call path;
* the patched bytes, byte-for-byte as in the paper's Figure 2.

Run: ``python examples/quickstart.py``
"""

from repro import Assembler, CountingServices, Reg, XContainer
from repro.arch.encoding import decode


def build_getpid_loop(iterations: int):
    asm = Assembler(base=0x400000)
    asm.mov_imm32(Reg.RBX, iterations)
    asm.label("loop")
    site = asm.syscall_site(39, style="mov_eax", symbol="getpid")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build("getpid_loop"), site


def main() -> None:
    binary, site = build_getpid_loop(iterations=1000)
    print(f"program: {binary.name}, {len(binary.code)} bytes of machine "
          f"code at {binary.base:#x}")
    original = binary.code[:7]
    print(f"syscall site before patching: {original.hex(' ')}  "
          f"({decode(original)})")

    services = CountingServices(results={39: 4242})
    xc = XContainer(services, name="quickstart")
    result = xc.run(binary)

    patched = xc.memory.read(site.syscall_addr - 5, 7)
    print(f"syscall site after patching:  {patched.hex(' ')}  "
          f"({decode(patched)})")
    print()
    print(f"instructions retired : {result.instructions}")
    print(f"simulated time       : {result.elapsed_ns / 1e3:.1f} us")
    print(f"final getpid() result: {result.exit_rax}")
    print()
    stats = xc.libos_stats
    print(f"syscalls, forwarded (trapped into the X-Kernel): "
          f"{stats.forwarded_syscalls}")
    print(f"syscalls, lightweight (function calls)         : "
          f"{stats.lightweight_syscalls}")
    print(f"ABOM patches applied                           : "
          f"{xc.abom_stats.total_patches}")
    print(f"syscall reduction (the Table 1 metric)         : "
          f"{xc.syscall_reduction():.1%}")


if __name__ == "__main__":
    main()
