#!/usr/bin/env python3
"""Serverless front-end scenario: one NGINX per tenant, many runtimes.

The paper's motivating deployment (§1, §5.5): a stateless single-concern
web front-end, where inter-container isolation matters and process
isolation inside the container is redundant.  This example prices the same
NGINX container on every runtime the paper compares, on both clouds, and
prints throughput, latency, and the isolation properties that motivate the
X-Container design.

Run: ``python examples/serverless_webserver.py``
"""

from repro.cloud import EC2, GCE
from repro.platforms import cloud_configurations
from repro.workloads import ApacheBench, NGINX, ServerModel
from repro.xen.hypercalls import HypercallTable


def main() -> None:
    print("Single-concern NGINX front-end: one container per tenant")
    print()
    for site in (EC2, GCE):
        costs = site.costs()
        configs = cloud_configurations(costs)
        client = ApacheBench(seed=f"serverless:{site.name}")
        print(f"--- {site.name} ({site.machine.name}) ---")
        header = (
            f"{'configuration':28s} {'req/s':>10s} {'latency ms':>11s} "
            f"{'vs docker':>10s}"
        )
        print(header)
        baseline = None
        for name, platform in configs.items():
            if not site.supports(platform):
                print(f"{name:28s} {'—':>10s} {'—':>11s} "
                      f"{'needs nested virt':>10s}")
                continue
            report = client.drive(ServerModel(platform, site), NGINX)
            if name == "docker":
                baseline = report.mean_throughput
            rel = report.mean_throughput / baseline if baseline else 1.0
            print(
                f"{name:28s} {report.mean_throughput:10,.0f} "
                f"{report.mean_latency_ms:11.2f} {rel:9.2f}x"
            )
        print()

    print("Why the isolation boundary matters (§3.4):")
    ratio = HypercallTable.attack_surface_ratio()
    print(
        f"  a Docker tenant attacks ~350 Linux syscalls; an X-Container "
        f"tenant attacks ~{350 / ratio:.0f} hypercalls "
        f"({ratio:.0f}x smaller interface)"
    )


if __name__ == "__main__":
    main()
