#!/usr/bin/env python3
"""Scale-out scenario: hundreds of microservice pods on one machine.

The Fig 8 experiment as a downstream user would run it: sweep the number
of NGINX+PHP-FPM containers on one 16-core host and compare flat
scheduling (Docker: one kernel, 4N processes) against hierarchical
scheduling (X-Containers: N vCPUs × 4 processes), plus ordinary Xen VMs —
including their §5.6 boot limits.

Run: ``python examples/scale_out.py``
"""

from repro.experiments.fig8_scalability import (
    N_VALUES,
    XEN_HVM_MAX,
    XEN_PV_MAX,
    curve,
)


def spark(value: float | None, scale: float) -> str:
    if value is None:
        return ""
    return "#" * max(1, int(value / scale))


def main() -> None:
    curves = {
        name: {p.n: p.throughput_rps for p in curve(name)}
        for name in ("docker", "x-container", "xen-pv", "xen-hvm")
    }
    peak = max(
        v for series in curves.values() for v in series.values() if v
    )
    scale = peak / 40

    for name, series in curves.items():
        print(f"--- {name} ---")
        for n in N_VALUES:
            value = series[n]
            label = f"{value:10,.0f}" if value is not None else (
                "     (would not boot)"
            )
            print(f"  N={n:3d} {label} {spark(value, scale)}")
        print()

    docker_400 = curves["docker"][400]
    x_400 = curves["x-container"][400]
    print(
        f"At N=400: X-Containers {x_400:,.0f} req/s vs Docker "
        f"{docker_400:,.0f} req/s -> {x_400 / docker_400 - 1:+.0%} "
        '(§5.6: "+18%")'
    )
    print(
        f"Xen PV stopped booting past {XEN_PV_MAX} instances, HVM past "
        f"{XEN_HVM_MAX} (§5.6)"
    )


if __name__ == "__main__":
    main()
