#!/usr/bin/env python3
"""ABOM inspector: every Figure 2 pattern, before and after, byte by byte.

Reproduces the paper's Figure 2 exactly: the 7-byte replacement (Case 1),
the 7-byte Go-runtime replacement (Case 2), and the two-phase 9-byte
replacement, plus the two safety mechanisms around them — the
return-address skip and the #UD fixup for jumps into a patched call's
tail.

Run: ``python examples/abom_inspector.py``
"""

from repro import Assembler, CountingServices, Reg, XContainer
from repro.arch.encoding import decode


def show(label: str, data: bytes) -> None:
    cursor = 0
    print(f"  {label}:")
    while cursor < len(data):
        try:
            instr = decode(data, cursor)
        except Exception:
            print(f"    {data[cursor:].hex(' '):24s}  <not decodable "
                  "alone: tail of a patched call>")
            break
        raw = data[cursor : cursor + instr.length]
        print(f"    {raw.hex(' '):24s}  {instr}")
        cursor += instr.length


def demo_case1() -> None:
    print("=" * 64)
    print("Case 1: mov $0x0,%eax ; syscall  ->  callq *0xffffffffff600008")
    asm = Assembler(base=0x400000)
    asm.mov_imm32(Reg.RBX, 2)
    asm.label("loop")
    site = asm.syscall_site(0, style="mov_eax", symbol="__read")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    binary = asm.build()
    xc = XContainer(CountingServices())
    show("before", binary.code[5:12])
    xc.run(binary)
    show("after", xc.memory.read(site.syscall_addr - 5, 7))


def demo_9byte() -> None:
    print("=" * 64)
    print("9-byte: mov $0xf,%rax ; syscall  ->  callq + jmp (two phases)")
    asm = Assembler(base=0x400000)
    asm.mov_imm32(Reg.RBX, 2)
    asm.label("loop")
    site = asm.syscall_site(15, style="mov_rax", symbol="__restore_rt")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    binary = asm.build()
    xc = XContainer(CountingServices())
    show("before", binary.code[5:14])
    xc.run(binary)
    show("after (phase 1 call + phase 2 jmp)",
         xc.memory.read(site.syscall_addr - 7, 9))
    print(f"  return-address skips performed: "
          f"{xc.libos_stats.return_address_skips}")


def demo_go() -> None:
    print("=" * 64)
    print("Case 2 (Go): mov 0x8(%rsp),%rax ; syscall  ->  "
          "callq *0xffffffffff600c08")
    asm = Assembler(base=0x400000)
    asm.mov_imm32(Reg.RBX, 2)
    asm.label("loop")
    asm.mov_imm64_low(Reg.RCX, 1)
    asm.store_rsp64(8, Reg.RCX)  # the Go runtime passes the nr on stack
    site = asm.syscall_site(1, style="go_stack", symbol="syscall.Syscall")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    binary = asm.build()
    xc = XContainer(CountingServices())
    offset = site.syscall_addr - 5 - binary.base
    show("before", binary.code[offset : offset + 7])
    xc.run(binary)
    show("after", xc.memory.read(site.syscall_addr - 5, 7))
    print(f"  dispatched syscall numbers (read from the stack at run "
          f"time): {xc.libos.services.calls}")


def demo_ud_fixup() -> None:
    print("=" * 64)
    print("#UD fixup: jumping into the '60 ff' tail of a patched call")
    asm = Assembler(base=0x400000)
    asm.mov_imm32(Reg.RBX, 2)
    asm.label("loop")
    asm.mov_imm32(Reg.RAX, 39)
    asm.label("old_syscall")
    asm.raw(b"\x0f\x05")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.cmp(Reg.RSI, 1)
    asm.je("done")
    asm.mov_imm32(Reg.RSI, 1)
    asm.mov_imm32(Reg.RBX, 1)
    asm.jmp("old_syscall")  # lands mid-call after patching -> #UD
    asm.label("done")
    asm.hlt()
    xc = XContainer(CountingServices())
    xc.run(asm.build())
    print(f"  #UD fixups performed by the X-Kernel: "
          f"{xc.abom_stats.ud_fixups}")
    print(f"  total dispatched getpid() calls    : "
          f"{xc.libos.services.count(39)}")


if __name__ == "__main__":
    demo_case1()
    demo_9byte()
    demo_go()
    demo_ud_fixup()
