#!/usr/bin/env python3
"""Full-stack scenario: everything working together, functionally.

No cost-model shortcuts here — actual requests flow through actual
components:

1. an image registry materializes an NGINX rootfs into an X-Container's
   LibOS, whose Docker wrapper boots it;
2. a functional HTTP server serves pages out of that RamFS over the
   virtual network to a wrk-style client;
3. a PHP+MiniDB pair renders dynamic pages in the Dedicated and Merged
   (same-container loopback) deployments of Figure 7, showing the
   simulated-time gap the paper's Fig 6c measures.

Run: ``python examples/full_stack.py``
"""

from repro.core import DockerWrapper, demo_images
from repro.guest.socket import VirtualNetwork
from repro.perf.clock import SimClock
from repro.workloads.http import HttpClient, StaticHttpServer
from repro.workloads.php_mysql_app import (
    build_dedicated_deployment,
    build_merged_deployment,
)


def serve_static_site() -> None:
    print("=" * 64)
    print("1. image -> X-Container -> HTTP served over the virtual net")
    wrapper = DockerWrapper(fast_toolstack=True, registry=demo_images())
    container, kernel, timing = wrapper.spawn_image("nginx:1.13")
    print(f"   spawned {container.name} in {timing.total_ms:.0f} ms "
          f"(boot {timing.boot_ms:.0f} ms)")
    network = VirtualNetwork(clock=container.clock)
    server = StaticHttpServer(kernel, network, ("10.0.0.1", 80))
    server.publish("/index.html", b"<h1>served from an X-Container</h1>")
    from repro.guest.kernel import GuestKernel

    client_kernel = GuestKernel(clock=container.clock)
    client = HttpClient(client_kernel, network, server.handle_one)
    for path in ("/index.html", "/index.html", "/missing.html"):
        status, body = client.get(("10.0.0.1", 80), path)
        print(f"   GET {path:14s} -> {status} ({len(body)} bytes)")
    print(f"   server stats: {server.stats.requests} requests, "
          f"{server.stats.errors} errors, "
          f"{server.stats.bytes_served} bytes")


def dynamic_pages() -> None:
    print("=" * 64)
    print("2. PHP + MiniDB: Dedicated vs Dedicated&Merged (Fig 7)")
    pages = 25
    dedicated_clock = SimClock()
    php_d, mysql_d = build_dedicated_deployment(dedicated_clock)
    for _ in range(pages):
        php_d.render_page()
    merged_clock = SimClock()
    php_m, mysql_m = build_merged_deployment(merged_clock)
    for _ in range(pages):
        php_m.render_page()
    d_us = dedicated_clock.now_us / pages
    m_us = merged_clock.now_us / pages
    print(f"   dedicated: {d_us:8.1f} us/page "
          f"({mysql_d.queries_served} queries over the virtual network)")
    print(f"   merged   : {m_us:8.1f} us/page "
          f"({mysql_m.queries_served} queries over loopback)")
    print(f"   merging PHP+MySQL into one container: "
          f"{d_us / m_us:.2f}x cheaper per page "
          "(the §5.5 Dedicated&Merged effect)")


if __name__ == "__main__":
    serve_static_site()
    dynamic_pages()
