#!/usr/bin/env python3
"""Kernel customization case study: IPVS load balancing (§5.7 / Fig 9).

Docker tenants cannot load kernel modules — that needs root on the shared
host kernel.  An X-Container owns its X-LibOS, so it can insmod IPVS and
switch from a user-level proxy (HAProxy) to in-kernel load balancing, and
from NAT to direct routing.  This example walks the four configurations
and shows where the bottleneck sits in each.

Run: ``python examples/kernel_load_balancer.py``
"""

from repro.guest.modules import ModuleLoadError
from repro.lb import LoadBalancedCluster
from repro.platforms import DockerPlatform, XContainerPlatform


def main() -> None:
    cluster = LoadBalancedCluster()

    print("Step 1: try to load the ip_vs module inside a Docker container")
    docker_kernel = DockerPlatform(cluster.costs).make_kernel()
    try:
        docker_kernel.modules.load("ip_vs")
    except ModuleLoadError as exc:
        print(f"  denied: {exc}")
    print()

    print("Step 2: load it inside an X-LibOS (the container OWNS its "
          "kernel)")
    x_kernel = XContainerPlatform(cluster.costs).make_kernel()
    x_kernel.modules.load("ip_vs")
    x_kernel.modules.load("ip_vs_rr")
    print(f"  loaded modules: {sorted(x_kernel.modules.loaded)}")
    print()

    print("Step 3: measure the four Fig 9 configurations "
          "(3 NGINX backends)")
    results = cluster.measure_all()
    baseline = results["docker-haproxy"].throughput_rps
    print(f"{'configuration':26s} {'req/s':>10s} {'vs docker':>10s} "
          f"{'bottleneck':>10s}")
    for name, result in results.items():
        print(
            f"{name:26s} {result.throughput_rps:10,.0f} "
            f"{result.throughput_rps / baseline:9.2f}x "
            f"{result.bottleneck:>10s}"
        )
    print()
    dr = results["xcontainer-ipvs-dr"]
    nat = results["xcontainer-ipvs-nat"]
    print(
        f"direct routing moved the bottleneck to the "
        f"{dr.bottleneck} and gained another "
        f"{dr.throughput_rps / nat.throughput_rps:.1f}x over NAT (§5.7: "
        '"total throughput improved by another factor of 2.5")'
    )


if __name__ == "__main__":
    main()
