#!/usr/bin/env python3
"""Checkpoint/restore and live migration of an X-Container (§3.3).

Because an X-Container is a Xen domain, the hypervisor ecosystem's
features apply unchanged — "live migration, fault tolerance, and
checkpoint/restore, which are hard to implement with traditional
containers".  This example:

1. runs a container halfway through a workload;
2. checkpoints it (memory image + vCPU state — including the text pages
   ABOM has already patched);
3. restores it into a brand-new container that finishes the run;
4. prices a live migration of the same container at several write rates.

Run: ``python examples/checkpoint_migration.py``
"""

from repro import Assembler, CountingServices, Reg, XContainer
from repro.xen.migration import LiveMigration


def build_workload(iterations: int):
    asm = Assembler()
    asm.mov_imm32(Reg.RBX, iterations)
    asm.label("loop")
    asm.syscall_site(39, style="mov_eax", symbol="getpid")
    asm.dec(Reg.RBX)
    asm.jne("loop")
    asm.hlt()
    return asm.build("worker")


def main() -> None:
    binary = build_workload(1000)
    source = XContainer(CountingServices(results={39: 1}), name="source")
    source.load(binary)
    source.cpu.regs.rip = binary.entry
    source.step(count=2000)  # part-way through
    done = len(source.libos.services.calls)
    print(f"source container ran {done} of 1000 syscalls, then froze")

    ckpt = source.checkpoint("demo")
    print(f"checkpoint: {len(ckpt.pages)} pages "
          f"({ckpt.memory_bytes / 1024:.0f} KiB), rip={ckpt.registers['rip']:#x}")

    target = XContainer.restore(ckpt, CountingServices(results={39: 1}),
                                name="target")
    target.resume()
    resumed = len(target.libos.services.calls)
    print(f"restored container finished the remaining {resumed} syscalls "
          f"({done} + {resumed} = {done + resumed})")
    print(f"ABOM patches carried over: the restored run trapped "
          f"{target.libos.stats.forwarded_syscalls} times")
    print()

    print("live migration of a 512 MB X-Container over 10 Gbit/s:")
    print(f"{'dirty rate (pages/s)':>22s} {'rounds':>7s} {'total ms':>9s} "
          f"{'downtime ms':>12s} {'converged':>10s}")
    for rate in (0, 20_000, 80_000, 200_000, 2_000_000):
        report = LiveMigration(
            memory_mb=512,
            dirty_rate_pages_s=float(rate),
            downtime_budget_ms=50.0,
        ).run()
        print(
            f"{rate:22,d} {report.rounds:7d} {report.total_ms:9.1f} "
            f"{report.downtime_ms:12.2f} {str(report.converged):>10s}"
        )


if __name__ == "__main__":
    main()
